"""Fleet event-loop tests: parity, determinism, guards, bookkeeping."""

import pytest

from repro.core import make_context, PlannedGroup
from repro.cluster import (LeastLoadedPlacement, RoundRobinPlacement,
                           placement_policy, run_fleet)
from repro.runtime import (Arrival, OnlineFCFS, OnlinePolicy,
                           ParallelExecutor, run_stream)

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def arrivals_every(gap, n, start=0):
    return [Arrival(start + gap * i, f"app{i}",
                    make_tiny_spec(f"app{i}", seed=i)) for i in range(n)]


def fcfs_factory(nc=2):
    return lambda _i: OnlineFCFS(nc)


def fingerprint(outcome):
    return {
        "assignments": dict(outcome.assignments),
        "makespan": outcome.makespan,
        "busy": [d.busy_cycles for d in outcome.devices],
        "groups": [[(g.start_cycle, tuple(g.outcome.members),
                     g.outcome.cycles) for g in d.groups]
                   for d in outcome.devices],
        "records": {n: (r.arrival_cycle, r.start_cycle, r.finish_cycle,
                        r.device) for n, r in outcome.records.items()},
    }


class TestSingleDeviceParity:
    def test_one_device_fleet_equals_run_stream(self, ctx):
        """A 1-device fleet is run_stream: same clocks, groups, records."""
        arrivals = arrivals_every(150, 6)
        fleet = run_fleet(arrivals, RoundRobinPlacement(), fcfs_factory(),
                          ctx, num_devices=1)
        stream = run_stream(arrivals, OnlineFCFS(2), ctx)
        assert fleet.makespan == stream.makespan
        assert fleet.devices[0].busy_cycles == stream.busy_cycles
        assert ([(g.start_cycle, tuple(g.outcome.members))
                 for g in fleet.devices[0].groups] ==
                [(g.start_cycle, tuple(g.outcome.members))
                 for g in stream.groups])
        for name, rec in stream.records.items():
            frec = fleet.records[name]
            assert (frec.arrival_cycle, frec.start_cycle,
                    frec.finish_cycle) == (rec.arrival_cycle,
                                           rec.start_cycle,
                                           rec.finish_cycle)
            assert frec.device == 0


class TestDeterminism:
    @pytest.mark.parametrize("placement_key",
                             ["round-robin", "least-loaded", "interference"])
    def test_workers_1_vs_4_identical(self, ctx, placement_key):
        """Same stream + same placement must yield identical per-device
        assignments and fleet metrics at 1 and 4 workers."""
        arrivals = arrivals_every(80, 8)
        serial = run_fleet(arrivals, placement_policy(placement_key),
                           fcfs_factory(), ctx, num_devices=3)
        with ParallelExecutor(4) as pool:
            parallel = run_fleet(arrivals, placement_policy(placement_key),
                                 fcfs_factory(), ctx, num_devices=3,
                                 executor=pool)
        assert fingerprint(serial) == fingerprint(parallel)
        assert serial.total_instructions == parallel.total_instructions
        assert serial.utilization == parallel.utilization

    def test_rerun_is_identical(self, ctx):
        arrivals = arrivals_every(80, 6)
        a = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                      ctx, num_devices=2)
        b = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                      ctx, num_devices=2)
        assert fingerprint(a) == fingerprint(b)


class TestFleetSemantics:
    def test_all_apps_complete_with_valid_records(self, ctx):
        arrivals = arrivals_every(100, 7)
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=3)
        assert set(out.records) == {a.name for a in arrivals}
        assert set(out.assignments) == set(out.records)
        for rec in out.records.values():
            assert rec.arrival_cycle <= rec.start_cycle < rec.finish_cycle
            assert rec.finish_cycle <= out.makespan
            assert rec.device == out.assignments[rec.name]
            group = out.devices[rec.device].groups[rec.group_index]
            assert group.start_cycle == rec.start_cycle
            assert rec.name in group.outcome.members

    def test_parallelism_across_devices_shrinks_makespan(self, ctx):
        """Two devices drain a simultaneous burst faster than one."""
        arrivals = [Arrival(0, f"app{i}", make_tiny_spec(f"app{i}", seed=i))
                    for i in range(4)]
        one = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=1)
        two = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=2)
        assert two.makespan < one.makespan
        assert sum(d.busy_cycles for d in two.devices) == \
            sum(d.busy_cycles for d in one.devices)

    def test_idle_devices_stay_idle(self, ctx):
        """One tiny app on a 3-device fleet leaves two devices empty."""
        out = run_fleet(arrivals_every(0, 1), RoundRobinPlacement(),
                        fcfs_factory(), ctx, num_devices=3)
        assert out.devices[0].busy_cycles > 0
        assert out.devices[1].busy_cycles == 0
        assert out.devices[2].busy_cycles == 0
        assert out.utilization < 1.0 / 2

    def test_empty_stream(self, ctx):
        out = run_fleet([], RoundRobinPlacement(), fcfs_factory(), ctx,
                        num_devices=2)
        assert out.makespan == 0
        assert out.records == {}
        assert all(not d.groups for d in out.devices)

    def test_late_arrival_fast_forwards(self, ctx):
        late = 1_000_000
        arrivals = [Arrival(0, "early", make_tiny_spec("early", seed=0)),
                    Arrival(late, "late", make_tiny_spec("late", seed=1))]
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=2)
        assert out.records["late"].start_cycle == late
        assert out.records["late"].wait_cycles == 0


class TestHeterogeneousFleet:
    """Per-device contexts: big/little fleets through run_fleet."""

    def test_groups_simulate_on_their_devices_config(self, small_cfg):
        import dataclasses
        half = dataclasses.replace(small_cfg.with_sms(2),
                                   name="TestGPU-half")
        ctxs = [make_context(small_cfg), make_context(half)]
        # Both devices get one identical app at the same instant.
        arrivals = [Arrival(0, "a", make_tiny_spec("same", seed=1)),
                    Arrival(0, "b", make_tiny_spec("same", seed=1))]
        out = run_fleet(arrivals, RoundRobinPlacement(), fcfs_factory(),
                        ctxs[0], num_devices=2, device_contexts=ctxs)
        assert out.devices[0].config_name == "TestGPU"
        assert out.devices[1].config_name == "TestGPU-half"
        # The same kernel takes longer on the half-size device.
        assert out.devices[1].busy_cycles > out.devices[0].busy_cycles

    def test_workers_1_vs_4_identical_on_mixed_fleet(self, small_cfg):
        import dataclasses
        half = dataclasses.replace(small_cfg.with_sms(2),
                                   name="TestGPU-half")
        ctxs = [make_context(small_cfg), make_context(half)]
        arrivals = arrivals_every(80, 8)
        serial = run_fleet(arrivals, LeastLoadedPlacement(),
                           fcfs_factory(), ctxs[0], num_devices=2,
                           device_contexts=ctxs)
        with ParallelExecutor(4) as pool:
            parallel = run_fleet(arrivals, LeastLoadedPlacement(),
                                 fcfs_factory(), ctxs[0], num_devices=2,
                                 device_contexts=ctxs, executor=pool)
        assert fingerprint(serial) == fingerprint(parallel)

    def test_context_count_must_match_devices(self, small_cfg):
        ctx = make_context(small_cfg)
        with pytest.raises(ValueError, match="device_contexts"):
            run_fleet([], RoundRobinPlacement(), fcfs_factory(), ctx,
                      num_devices=2, device_contexts=[ctx])

    def test_homogeneous_contexts_match_classic_path(self, small_cfg):
        """Explicit per-device contexts for one config change nothing."""
        ctx = make_context(small_cfg)
        arrivals = arrivals_every(100, 5)
        classic = run_fleet(arrivals, LeastLoadedPlacement(),
                            fcfs_factory(), ctx, num_devices=2)
        explicit = run_fleet(arrivals, LeastLoadedPlacement(),
                             fcfs_factory(), ctx, num_devices=2,
                             device_contexts=[ctx, ctx])
        assert fingerprint(classic) == fingerprint(explicit)


class TestGuards:
    def test_zero_devices_rejected(self, ctx):
        with pytest.raises(ValueError, match="at least one device"):
            run_fleet([], RoundRobinPlacement(), fcfs_factory(), ctx,
                      num_devices=0)

    def test_duplicate_names_rejected(self, ctx):
        spec = make_tiny_spec("dup")
        with pytest.raises(ValueError, match="unique"):
            run_fleet([Arrival(0, "dup", spec), Arrival(5, "dup", spec)],
                      RoundRobinPlacement(), fcfs_factory(), ctx,
                      num_devices=2)

    def test_stalling_policy_detected(self, ctx):
        class Staller(OnlinePolicy):
            name = "staller"

            def next_group(self, now, ctx):
                return None

        with pytest.raises(RuntimeError, match="waiting applications"):
            run_fleet(arrivals_every(0, 1), RoundRobinPlacement(),
                      lambda _i: Staller(), ctx, num_devices=2)

    def test_cross_device_scheduling_detected(self, ctx):
        """A policy may only schedule apps placed on its own device."""
        leak = ("leak", make_tiny_spec("leak", seed=9))

        class Thief(OnlinePolicy):
            name = "thief"

            def next_group(self, now, ctx):
                if self.waiting:
                    self.waiting.clear()
                    return PlannedGroup(members=[leak])
                return None

        arrivals = [Arrival(0, "mine", make_tiny_spec("mine", seed=0)),
                    Arrival(0, *leak)]
        # Round-robin puts "mine" on device 0 and "leak" on device 1;
        # device 0's policy then tries to launch "leak".
        with pytest.raises(RuntimeError, match="placement assigned"):
            run_fleet(arrivals, RoundRobinPlacement(), lambda _i: Thief(),
                      ctx, num_devices=2)

    def test_foreign_device_from_placement_detected(self, ctx):
        from repro.cluster import Device, PlacementPolicy

        class Rogue(PlacementPolicy):
            name = "rogue"

            def choose(self, entry, now, devices, ctx):
                return Device(0, OnlineFCFS(2))  # not in the fleet

        with pytest.raises(RuntimeError, match="outside the fleet"):
            run_fleet(arrivals_every(0, 1), Rogue(), fcfs_factory(), ctx,
                      num_devices=2)

"""Placement policy tests: round-robin, least-loaded, interference."""

import pytest

from repro.core import make_context
from repro.core.classification import AppClass
from repro.core.interference import InterferenceModel
from repro.cluster import (Device, InterferenceAwarePlacement,
                           LeastLoadedPlacement, RoundRobinPlacement,
                           placement_policy)
from repro.runtime import OnlineFCFS

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def fleet(n):
    return [Device(i, OnlineFCFS(2)) for i in range(n)]


def entry(name, seed=0):
    return (name, make_tiny_spec(name, seed=seed))


#: M suffers badly next to M, mildly next to MC/C, not at all next to A;
#: all other victims are insensitive.  Rows/columns follow CLASS_ORDER
#: (M, MC, C, A).
MODEL = InterferenceModel(slowdown=(
    (3.0, 1.5, 1.2, 1.0),
    (1.1, 1.1, 1.1, 1.0),
    (1.1, 1.1, 1.1, 1.0),
    (1.0, 1.0, 1.0, 1.0),
))


class TestRoundRobin:
    def test_cycles_through_devices(self, ctx):
        devices = fleet(3)
        placement = RoundRobinPlacement()
        chosen = [placement.choose(entry(f"a{i}", i), 0, devices, ctx)
                  .device_id for i in range(7)]
        assert chosen == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self, ctx):
        devices = fleet(2)
        devices[0].assign(entry("busy0"), 0, ctx)
        placement = RoundRobinPlacement()
        assert placement.choose(entry("x"), 0, devices, ctx).device_id == 0


class TestLeastLoaded:
    def test_prefers_emptiest_queue(self, ctx):
        devices = fleet(3)
        devices[0].assign(entry("a"), 0, ctx)
        devices[0].assign(entry("b", 1), 0, ctx)
        devices[1].assign(entry("c", 2), 0, ctx)
        placement = LeastLoadedPlacement()
        assert placement.choose(entry("x", 3), 0, devices, ctx).device_id == 2

    def test_tie_breaks_by_soonest_free_then_id(self, ctx):
        devices = fleet(2)
        # Equal load; device 1 frees sooner than device 0.
        devices[0].completion_cycle = 500
        devices[1].completion_cycle = 100
        placement = LeastLoadedPlacement()
        assert placement.choose(entry("x"), 0, devices, ctx).device_id == 1
        # All equal → lowest id.
        devices[1].completion_cycle = 500
        assert placement.choose(entry("x"), 0, devices, ctx).device_id == 0


class TestCapabilityScaling:
    """Least-loaded on big/little fleets: residents per peak IPC."""

    def device_with_config(self, device_id, config):
        from repro.core import make_context
        return Device(device_id, OnlineFCFS(2), ctx=make_context(config))

    def test_equal_loads_prefer_the_bigger_device(self, small_cfg, ctx):
        big = self.device_with_config(1, small_cfg.with_sms(8))
        little = self.device_with_config(0, small_cfg.with_sms(2))
        little.assign(entry("a"), 0, little.ctx)
        big.assign(entry("b", 1), 0, big.ctx)
        placement = LeastLoadedPlacement()
        # 1 resident / 8 SMs beats 1 resident / 2 SMs despite the id.
        assert placement.choose(entry("x", 2), 0, [little, big],
                                ctx).device_id == 1

    def test_big_device_absorbs_proportionally_more(self, small_cfg, ctx):
        big = self.device_with_config(1, small_cfg.with_sms(8))
        little = self.device_with_config(0, small_cfg.with_sms(2))
        placement = LeastLoadedPlacement()
        chosen = []
        for i in range(5):
            device = placement.choose(entry(f"s{i}", i), 0,
                                      [little, big], ctx)
            device.assign(entry(f"s{i}", i), 0, device.ctx)
            chosen.append(device.device_id)
        # Empty fleet ties to device 0, then the 4x device soaks up the
        # rest until the ratio evens out.
        assert chosen == [0, 1, 1, 1, 1]

    def test_devices_without_configs_rank_by_raw_load(self, ctx):
        devices = fleet(2)
        devices[0].assign(entry("a"), 0, ctx)
        placement = LeastLoadedPlacement()
        assert placement.choose(entry("x", 1), 0, devices,
                                ctx).device_id == 1


class TestInterferenceAware:
    def test_avoids_hostile_resident_mix(self, ctx):
        """An M app must dodge the device holding another M app."""
        ctx.interference = MODEL
        devices = fleet(2)
        classes = {"m0": AppClass.M, "a0": AppClass.A, "new": AppClass.M}
        devices[0].assign(entry("m0"), 0, ctx)
        devices[1].assign(entry("a0", 1), 0, ctx)
        placement = InterferenceAwarePlacement(classes=classes)
        assert placement.choose(entry("new", 2), 0, devices,
                                ctx).device_id == 1

    def test_empty_device_beats_benign_mix(self, ctx):
        """Score ties (A next to anything = 1.0) fall back to load."""
        ctx.interference = MODEL
        devices = fleet(2)
        classes = {"a0": AppClass.A, "new": AppClass.A}
        devices[0].assign(entry("a0"), 0, ctx)
        placement = InterferenceAwarePlacement(classes=classes)
        assert placement.choose(entry("new", 1), 0, devices,
                                ctx).device_id == 1

    def test_additive_model_penalizes_crowds(self, ctx):
        """Two mild aggressors outweigh one, per the additive model."""
        ctx.interference = MODEL
        devices = fleet(2)
        classes = {"mc0": AppClass.MC, "mc1": AppClass.MC,
                   "m0": AppClass.M, "new": AppClass.M}
        devices[0].assign(entry("mc0"), 0, ctx)
        devices[0].assign(entry("mc1", 1), 0, ctx)   # S = 1.5+1.5-1 = 2.0
        devices[1].assign(entry("m0", 2), 0, ctx)    # S = 3.0
        placement = InterferenceAwarePlacement(classes=classes)
        assert placement.choose(entry("new", 3), 0, devices,
                                ctx).device_id == 0

    def test_degrades_to_least_loaded_without_model(self, ctx):
        assert ctx.interference is None
        devices = fleet(2)
        devices[0].assign(entry("a"), 0, ctx)
        placement = InterferenceAwarePlacement(
            classes={"a": AppClass.M, "x": AppClass.M})
        assert placement.choose(entry("x", 1), 0, devices, ctx).device_id == 1

    def test_consults_each_devices_own_matrix(self, small_cfg, ctx):
        """In a mixed fleet the score of a candidate device must come
        from the matrix measured on that device's configuration."""
        from repro.core import make_context
        # Device 0's config predicts brutal M-on-M slowdown, device 1's
        # (a different config) predicts none.
        calm = InterferenceModel(slowdown=tuple(
            tuple(1.0 for _ in range(4)) for _ in range(4)))
        ctx0 = make_context(small_cfg)
        ctx0.interference = MODEL
        ctx1 = make_context(small_cfg.with_sms(2))
        ctx1.interference = calm
        devices = [Device(0, OnlineFCFS(2), ctx=ctx0),
                   Device(1, OnlineFCFS(2), ctx=ctx1)]
        classes = {"m0": AppClass.M, "m1": AppClass.M, "new": AppClass.M}
        devices[0].assign(entry("m0"), 0, ctx0)
        devices[1].assign(entry("m1", 1), 0, ctx1)
        placement = InterferenceAwarePlacement(classes=classes)
        # Same resident class on both sides; only device 1's matrix says
        # co-running M with M is free there.
        assert placement.choose(entry("new", 2), 0, devices,
                                ctx).device_id == 1

    def test_any_missing_matrix_degrades_to_least_loaded(self, small_cfg,
                                                         ctx):
        """A device context without a matrix must NOT be scored with the
        fleet-wide matrix (measured on a different config): the whole
        choice degrades to least-loaded."""
        from repro.core import make_context
        # Both the fleet-wide context and device 0 carry matrices;
        # device 1's context has none.  The mixes are arranged so
        # interference scoring would pick device 0 (benign A residents,
        # S=1.0) while least-loaded picks device 1 (equal load/capability
        # ratios of 2/128 vs 1/64, raw-load tie-break 1 < 2) — so a
        # fallback that wrongly scored device 1 with the fleet-wide
        # matrix would flip the outcome.
        ctx.interference = MODEL
        ctx0 = make_context(small_cfg)
        ctx0.interference = MODEL
        ctx1 = make_context(small_cfg.with_sms(2))  # no matrix
        devices = [Device(0, OnlineFCFS(2), ctx=ctx0),
                   Device(1, OnlineFCFS(2), ctx=ctx1)]
        devices[0].assign(entry("a0"), 0, ctx0)
        devices[0].assign(entry("a1", 1), 0, ctx0)
        devices[1].assign(entry("m0", 2), 0, ctx1)
        placement = InterferenceAwarePlacement(
            classes={"a0": AppClass.A, "a1": AppClass.A,
                     "m0": AppClass.M, "x": AppClass.M})
        assert placement.choose(entry("x", 3), 0, devices,
                                ctx).device_id == 1

    def test_declares_interference_need(self):
        assert InterferenceAwarePlacement.needs_interference
        assert not RoundRobinPlacement.needs_interference
        assert not LeastLoadedPlacement.needs_interference


class TestRegistry:
    def test_known_keys(self):
        from repro.api import REGISTRY
        keys = REGISTRY.names("placements")
        assert set(keys) == {"round-robin", "least-loaded", "interference"}
        for key in keys:
            assert placement_policy(key).name == key

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            placement_policy("magic")

    def test_fresh_instance_per_call(self):
        assert placement_policy("round-robin") is not \
            placement_policy("round-robin")

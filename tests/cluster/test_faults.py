"""Fault injection + admission control: determinism, requeue, accounting."""

import pytest

from repro.core import make_context
from repro.cluster import (DeadlineAdmission, FaultEvent, FaultPlan,
                           LeastLoadedPlacement, QueueCapAdmission,
                           RoundRobinPlacement, mtbf_plan, run_fleet,
                           scheduled_plan, transient_plan)
from repro.runtime import Arrival, OnlineFCFS, ParallelExecutor

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def arrivals_every(gap, n, start=0):
    return [Arrival(start + gap * i, f"app{i}",
                    make_tiny_spec(f"app{i}", seed=i)) for i in range(n)]


def fcfs_factory(nc=2):
    return lambda _i: OnlineFCFS(nc)


def fingerprint(outcome):
    return {
        "assignments": dict(outcome.assignments),
        "makespan": outcome.makespan,
        "busy": [d.busy_cycles for d in outcome.devices],
        "lost": [d.lost_cycles for d in outcome.devices],
        "down": [d.down_cycles for d in outcome.devices],
        "failed": [[(f.start_cycle, f.members, f.reason)
                    for f in d.failed_groups] for d in outcome.devices],
        "groups": [[(g.start_cycle, tuple(g.outcome.members),
                     g.outcome.cycles) for g in d.groups]
                   for d in outcome.devices],
        "records": {n: (r.arrival_cycle, r.start_cycle, r.finish_cycle,
                        r.device, r.retries)
                    for n, r in outcome.records.items()},
        "rejected": [(r.name, r.cycle, r.reason, r.retries)
                     for r in outcome.rejected],
        "events": list(outcome.fault_events),
    }


class TestFaultPlanValidation:
    def test_events_sorted_and_alternating(self):
        plan = scheduled_plan(2, events=[[500, 0, "up"], [100, 0, "down"]])
        assert plan.events == (FaultEvent(100, 0, "down"),
                               FaultEvent(500, 0, "up"))

    def test_up_before_down_rejected(self):
        with pytest.raises(ValueError, match="alternate down/up"):
            scheduled_plan(1, events=[[100, 0, "up"]])

    def test_double_down_rejected(self):
        with pytest.raises(ValueError, match="'up' was expected"):
            scheduled_plan(1, events=[[100, 0, "down"], [200, 0, "down"]])

    def test_device_out_of_range_has_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean device 1"):
            scheduled_plan(2, events=[[100, 2, "down"]])

    def test_all_down_at_cycle_zero_rejected(self):
        with pytest.raises(ValueError, match="DOWN at cycle 0"):
            scheduled_plan(2, events=[[0, 0, "down"], [0, 1, "down"]])

    def test_one_survivor_at_cycle_zero_is_fine(self):
        plan = scheduled_plan(2, events=[[0, 0, "down"]])
        assert plan.events[0].kind == "down"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="down.*up|up.*down"):
            FaultEvent(100, 0, "sideways")

    def test_empty_scheduled_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            scheduled_plan(2, events=[])

    def test_validate_for_other_fleet_size(self):
        plan = scheduled_plan(4, events=[[100, 3, "down"]])
        with pytest.raises(ValueError, match="did you mean device 1"):
            plan.validate_for(2)


class TestMtbfPlan:
    def test_same_seed_same_events(self):
        a = mtbf_plan(3, mtbf=20_000, mttr=5_000, horizon=100_000, seed=7)
        b = mtbf_plan(3, mtbf=20_000, mttr=5_000, horizon=100_000, seed=7)
        assert a.events == b.events
        assert a.events  # the horizon is long enough to produce churn

    def test_different_seed_different_events(self):
        a = mtbf_plan(3, mtbf=20_000, mttr=5_000, horizon=100_000, seed=7)
        b = mtbf_plan(3, mtbf=20_000, mttr=5_000, horizon=100_000, seed=8)
        assert a.events != b.events

    def test_every_down_has_a_matching_up(self):
        plan = mtbf_plan(4, mtbf=10_000, mttr=3_000, horizon=80_000,
                         seed=11)
        for device in range(4):
            kinds = [e.kind for e in plan.events if e.device == device]
            assert kinds == ["down", "up"] * (len(kinds) // 2)

    def test_no_device_down_at_cycle_zero(self):
        for seed in range(10):
            plan = mtbf_plan(2, mtbf=50.0, mttr=10.0, horizon=1_000,
                             seed=seed)
            assert all(e.cycle >= 1 for e in plan.events)


class TestTransientFailures:
    def test_group_fails_is_deterministic(self):
        plan = transient_plan(2, fail_prob=0.5, seed=3)
        members, attempts = ["a", "b"], [0, 0]
        assert plan.group_fails(members, attempts) == \
            plan.group_fails(members, attempts)

    def test_retry_changes_the_draw_input(self):
        plan = transient_plan(2, fail_prob=0.5, seed=3,
                              max_retries=10**6)
        draws = {plan.group_fails(["a"], [t]) for t in range(30)}
        assert draws == {True, False}

    def test_max_retries_forces_success(self):
        plan = transient_plan(2, fail_prob=1.0, max_retries=2, seed=0)
        assert plan.group_fails(["a"], [0]) is True
        assert plan.group_fails(["a"], [2]) is False

    def test_bounded_retry_serves_everything(self, ctx):
        arrivals = arrivals_every(80, 6)
        out = run_fleet(arrivals, RoundRobinPlacement(), fcfs_factory(),
                        ctx, num_devices=2,
                        faults=transient_plan(2, fail_prob=0.5, seed=3,
                                              max_retries=2))
        assert set(out.records) == {a.name for a in arrivals}
        assert all(r.retries <= 2 for r in out.records.values())
        assert sum(len(d.failed_groups) for d in out.devices) > 0
        assert sum(d.lost_cycles for d in out.devices) > 0
        for dev in out.devices:
            for failed in dev.failed_groups:
                assert failed.reason == "transient"
                assert failed.executed_cycles == failed.planned_cycles


class TestDeviceFailure:
    def test_down_device_requeues_onto_survivor(self, ctx):
        """Device 0 dies mid-group: its work re-places onto device 1."""
        arrivals = [Arrival(0, f"app{i}", make_tiny_spec(f"app{i}",
                                                         seed=i))
                    for i in range(4)]
        plan = scheduled_plan(2, events=[[50, 0, "down"]])
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=2, faults=plan)
        assert set(out.records) == {a.name for a in arrivals}
        assert all(r.device == 1 for r in out.records.values())
        displaced = [r for r in out.records.values() if r.retries > 0]
        assert displaced
        dev0 = out.devices[0]
        assert dev0.failed_groups
        assert dev0.failed_groups[0].reason == "device-down"
        assert dev0.failed_groups[0].executed_cycles < \
            dev0.failed_groups[0].planned_cycles
        assert dev0.down_cycles == out.makespan - 50
        assert dev0.lost_cycles > 0
        assert out.fault_events == [FaultEvent(50, 0, "down")]

    def test_recovered_device_serves_later_arrivals(self, ctx):
        """After the up event the device is placeable again."""
        early = arrivals_every(0, 2)
        late = [Arrival(500_000, "late0", make_tiny_spec("late0", seed=8)),
                Arrival(500_000, "late1", make_tiny_spec("late1", seed=9))]
        plan = scheduled_plan(2, events=[[50, 0, "down"], [400, 0, "up"]])
        out = run_fleet(early + late, RoundRobinPlacement(),
                        fcfs_factory(1), ctx, num_devices=2, faults=plan)
        assert set(out.records) == {"app0", "app1", "late0", "late1"}
        assert {out.records["late0"].device,
                out.records["late1"].device} == {0, 1}
        assert out.devices[0].down_cycles == 350
        assert out.fault_events == [FaultEvent(50, 0, "down"),
                                    FaultEvent(400, 0, "up")]

    def test_zero_fault_plan_matches_no_plan(self, ctx):
        """An armed-but-empty FaultPlan changes nothing."""
        arrivals = arrivals_every(80, 6)
        empty = FaultPlan(events=(), fail_prob=0.0, num_devices=2)
        a = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                      ctx, num_devices=2)
        b = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                      ctx, num_devices=2, faults=empty)
        assert fingerprint(a) == fingerprint(b)

    def test_graceful_degradation_rejects_without_crashing(self, ctx):
        """The whole fleet dies: pending + future work is rejected."""
        plan = scheduled_plan(2, events=[[100, 0, "down"],
                                         [100, 1, "down"]])
        out = run_fleet(arrivals_every(50, 6), LeastLoadedPlacement(),
                        fcfs_factory(), ctx, num_devices=2, faults=plan)
        assert not out.records
        assert len(out.rejected) == 6
        assert all(r.reason == "no-device" for r in out.rejected)
        assert all(d.down_cycles > 0 for d in out.devices)

    def test_workers_1_vs_4_identical_with_faults(self, ctx):
        arrivals = arrivals_every(60, 8)

        def drain(executor=None):
            return run_fleet(
                arrivals, LeastLoadedPlacement(), fcfs_factory(), ctx,
                num_devices=3, executor=executor,
                faults=mtbf_plan(3, mtbf=2_000, mttr=500, horizon=20_000,
                                 fail_prob=0.2, seed=9),
                admission=QueueCapAdmission(queue_cap=3, mode="defer",
                                            defer_gap=200, max_defers=2))

        serial = drain()
        with ParallelExecutor(4) as pool:
            parallel = drain(pool)
        assert fingerprint(serial) == fingerprint(parallel)


class TestAdmission:
    def test_queue_cap_reject_accounting(self, ctx):
        arrivals = arrivals_every(10, 10)
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=1,
                        admission=QueueCapAdmission(queue_cap=1))
        assert len(out.records) + len(out.rejected) == len(arrivals)
        assert out.rejected
        assert all(r.reason == "queue-cap" for r in out.rejected)
        assert all(r.cycle == r.arrival_cycle for r in out.rejected)

    def test_defer_mode_retries_before_rejecting(self, ctx):
        arrivals = arrivals_every(10, 8)
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=1,
                        admission=QueueCapAdmission(queue_cap=1,
                                                    mode="defer",
                                                    defer_gap=100,
                                                    max_defers=2))
        assert len(out.records) + len(out.rejected) == len(arrivals)
        # A rejected deferral is stamped at its final re-offer, after
        # max_defers re-offers, not at arrival.
        for r in out.rejected:
            assert r.cycle == r.arrival_cycle + 2 * 100

    def test_defer_mode_admits_more_than_reject_mode(self, ctx):
        arrivals = arrivals_every(10, 8)
        reject = run_fleet(arrivals, LeastLoadedPlacement(),
                           fcfs_factory(), ctx, num_devices=1,
                           admission=QueueCapAdmission(queue_cap=1))
        defer = run_fleet(arrivals, LeastLoadedPlacement(),
                          fcfs_factory(), ctx, num_devices=1,
                          admission=QueueCapAdmission(queue_cap=1,
                                                      mode="defer",
                                                      defer_gap=2_000,
                                                      max_defers=3))
        assert len(defer.records) >= len(reject.records)

    def test_deadline_rejects_when_backlog_is_hopeless(self, ctx):
        # app0 lands on the idle device (optimistic bound 0); later
        # arrivals see its remaining busy cycles blow deadline 1.
        arrivals = arrivals_every(10, 6)
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=1,
                        admission=DeadlineAdmission(deadline_cycles=1))
        assert out.rejected
        assert all(r.reason == "deadline" for r in out.rejected)
        assert len(out.records) + len(out.rejected) == 6

    def test_bad_verdict_is_rejected(self, ctx):
        class Weird(QueueCapAdmission):
            name = "weird"

            def decide(self, entry, now, devices, ctx):
                return "maybe"

        with pytest.raises(RuntimeError, match="expected one of"):
            run_fleet(arrivals_every(0, 2), LeastLoadedPlacement(),
                      fcfs_factory(), ctx, num_devices=1,
                      admission=Weird())


class TestFaultAnalysis:
    def test_summarize_faults_accounting(self, ctx):
        from repro.analysis import summarize_faults
        arrivals = arrivals_every(10, 10)
        out = run_fleet(arrivals, LeastLoadedPlacement(), fcfs_factory(),
                        ctx, num_devices=2,
                        faults=scheduled_plan(2, events=[[50, 0, "down"]]),
                        admission=QueueCapAdmission(queue_cap=2))
        m = summarize_faults(out)
        assert m["arrivals"] == 10
        assert m["served"] + m["rejected"] == m["arrivals"]
        assert m["admitted"] == 10 - m["rejected_by_reason"].get(
            "queue-cap", 0)
        assert m["goodput_cycles"] == sum(
            d.busy_cycles - d.lost_cycles for d in out.devices)
        assert m["availability"] < 1.0
        assert m["availability_timeline"][0] == [0, 2]
        assert sum(m["retry_histogram"].values()) == m["arrivals"]

    def test_availability_timeline_coalesces_cycles(self):
        from repro.analysis import availability_timeline
        events = [FaultEvent(100, 0, "down"), FaultEvent(100, 1, "down"),
                  FaultEvent(300, 0, "up")]
        assert availability_timeline(events, 3) == [[0, 3], [100, 1],
                                                    [300, 2]]

    def test_deadline_attainment(self, ctx):
        from repro.analysis import deadline_attainment
        out = run_fleet(arrivals_every(0, 4), LeastLoadedPlacement(),
                        fcfs_factory(), ctx, num_devices=2)
        assert deadline_attainment(out.records, 10**9) == 1.0
        assert deadline_attainment(out.records, 1) == 0.0
        with pytest.raises(ValueError, match="deadline_cycles"):
            deadline_attainment(out.records, 0)

"""Device lifecycle tests: assign → launch → complete bookkeeping."""

import pytest

from repro.core import make_context, run_group, PlannedGroup
from repro.cluster import Device
from repro.runtime import OnlineFCFS

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def entries(n):
    return [(f"app{i}", make_tiny_spec(f"app{i}", seed=i)) for i in range(n)]


def simulate_group(members, ctx):
    return run_group(PlannedGroup(members=list(members)), ctx.config,
                     ctx.smra_params)


class TestLifecycle:
    def test_assign_tracks_residents_and_policy_queue(self, ctx):
        dev = Device(0, OnlineFCFS(2))
        for entry in entries(3):
            dev.assign(entry, 0, ctx)
        assert dev.load() == 3
        assert dev.pending
        assert not dev.busy
        assert dev.remaining_busy(0) == 0

    def test_launch_and_complete(self, ctx):
        dev = Device(0, OnlineFCFS(2))
        apps = entries(2)
        for entry in apps:
            dev.assign(entry, 0, ctx)
        group = dev.next_group(0, ctx)
        assert [n for n, _ in group.members] == ["app0", "app1"]
        outcome = simulate_group(group.members, ctx)
        dev.launch(outcome, now=100)
        assert dev.busy
        assert dev.completion_cycle == 100 + outcome.cycles
        assert dev.remaining_busy(100) == outcome.cycles
        assert dev.busy_cycles == outcome.cycles
        # Launched apps remain resident until their group completes.
        assert dev.load() == 2
        completed = dev.complete(ctx)
        assert completed is outcome
        assert not dev.busy
        assert dev.load() == 0
        assert len(dev.groups) == 1
        assert dev.groups[0].start_cycle == 100

    def test_complete_retires_only_running_members(self, ctx):
        dev = Device(0, OnlineFCFS(1))
        apps = entries(2)
        for entry in apps:
            dev.assign(entry, 0, ctx)
        group = dev.next_group(0, ctx)
        dev.launch(simulate_group(group.members, ctx), now=0)
        assert dev.load() == 2
        dev.complete(ctx)
        # app1 is still waiting on this device.
        assert dev.load() == 1
        assert dev.resident[0][0] == "app1"
        assert dev.pending


class TestGuards:
    def test_negative_device_id_rejected(self):
        with pytest.raises(ValueError):
            Device(-1, OnlineFCFS(2))

    def test_next_group_while_busy_rejected(self, ctx):
        dev = Device(0, OnlineFCFS(2))
        dev.assign(entries(1)[0], 0, ctx)
        group = dev.next_group(0, ctx)
        dev.launch(simulate_group(group.members, ctx), now=0)
        with pytest.raises(RuntimeError, match="busy"):
            dev.next_group(0, ctx)

    def test_double_launch_rejected(self, ctx):
        dev = Device(0, OnlineFCFS(2))
        dev.assign(entries(1)[0], 0, ctx)
        outcome = simulate_group(dev.next_group(0, ctx).members, ctx)
        dev.launch(outcome, now=0)
        with pytest.raises(RuntimeError, match="busy"):
            dev.launch(outcome, now=0)

    def test_complete_while_idle_rejected(self, ctx):
        with pytest.raises(RuntimeError, match="complete"):
            Device(0, OnlineFCFS(2)).complete(ctx)

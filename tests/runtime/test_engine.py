"""Stream engine tests: clock, waits, records, batch equivalence."""

import pytest

from repro.core import EvenPolicy, make_context, run_queue
from repro.gpusim import small_test_config
from repro.runtime import (Arrival, BatchPolicyAdapter, OnlineFCFS,
                           OnlinePolicy, run_stream)

from ..conftest import make_tiny_spec


def specs(n):
    return {f"app{i}": make_tiny_spec(f"app{i}", seed=i) for i in range(n)}


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


class TestBatchEquivalence:
    def test_zero_cycle_arrivals_reproduce_run_queue(self, ctx):
        """All-at-zero arrivals under an adapted batch policy must equal
        the classic batch drain: same groups, same cycles."""
        suite = specs(4)
        queue = list(suite.items())
        batch = run_queue(queue, EvenPolicy(2), ctx)
        stream = run_stream(
            [Arrival(0, n, s) for n, s in queue],
            BatchPolicyAdapter(EvenPolicy(2)), ctx)
        assert stream.makespan == batch.total_cycles
        assert stream.busy_cycles == batch.total_cycles
        assert stream.total_instructions == batch.total_instructions
        assert ([g.outcome.members for g in stream.groups] ==
                [g.members for g in batch.groups])
        for sg, bg in zip(stream.groups, batch.groups):
            assert sg.outcome.cycles == bg.cycles

    def test_group_start_cycles_are_cumulative(self, ctx):
        suite = specs(4)
        stream = run_stream([Arrival(0, n, s) for n, s in suite.items()],
                            BatchPolicyAdapter(EvenPolicy(2)), ctx)
        expected_start = 0
        for g in stream.groups:
            assert g.start_cycle == expected_start
            expected_start += g.outcome.cycles


class TestOnlineClock:
    def test_policy_cannot_see_future_arrivals(self, ctx):
        """An app arriving while the device is busy must not join the
        in-flight group: FCFS with NC=2 still runs two solo groups."""
        suite = specs(2)
        arrivals = [Arrival(0, "app0", suite["app0"]),
                    Arrival(100, "app1", suite["app1"])]
        out = run_stream(arrivals, OnlineFCFS(2), ctx)
        assert len(out.groups) == 2
        assert [g.outcome.members for g in out.groups] == \
            [["app0"], ["app1"]]
        first = out.records["app0"]
        second = out.records["app1"]
        assert first.start_cycle == 0
        assert second.start_cycle == first.finish_cycle
        assert second.wait_cycles == first.finish_cycle - 100

    def test_idle_gap_fast_forwards(self, ctx):
        suite = specs(2)
        late = 1_000_000
        arrivals = [Arrival(0, "app0", suite["app0"]),
                    Arrival(late, "app1", suite["app1"])]
        out = run_stream(arrivals, OnlineFCFS(2), ctx)
        rec = out.records["app1"]
        assert rec.start_cycle == late
        assert rec.wait_cycles == 0
        assert out.makespan == rec.finish_cycle
        assert out.busy_cycles < out.makespan
        assert out.utilization < 1.0

    def test_simultaneous_arrivals_form_group(self, ctx):
        suite = specs(2)
        arrivals = [Arrival(500, n, s) for n, s in suite.items()]
        out = run_stream(arrivals, OnlineFCFS(2), ctx)
        assert len(out.groups) == 1
        assert out.groups[0].start_cycle == 500

    def test_record_invariants(self, ctx):
        suite = specs(3)
        arrivals = [Arrival(100 * i, n, s)
                    for i, (n, s) in enumerate(suite.items())]
        out = run_stream(arrivals, OnlineFCFS(2), ctx)
        assert set(out.records) == set(suite)
        for rec in out.records.values():
            assert rec.arrival_cycle <= rec.start_cycle < rec.finish_cycle
            assert rec.wait_cycles >= 0
            assert rec.turnaround_cycles == (rec.wait_cycles +
                                             rec.service_cycles)
            assert out.groups[rec.group_index].start_cycle == \
                rec.start_cycle


class TestValidation:
    def test_duplicate_names_rejected(self, ctx):
        spec = make_tiny_spec("dup")
        with pytest.raises(ValueError):
            run_stream([Arrival(0, "dup", spec), Arrival(5, "dup", spec)],
                       OnlineFCFS(2), ctx)

    def test_negative_arrival_cycle_rejected(self):
        with pytest.raises(ValueError):
            Arrival(-1, "x", make_tiny_spec("x"))

    def test_stalling_policy_detected(self, ctx):
        class Staller(OnlinePolicy):
            name = "staller"

            def next_group(self, now, ctx):
                return None

        with pytest.raises(RuntimeError, match="waiting applications"):
            run_stream([Arrival(0, "app0", make_tiny_spec("app0"))],
                       Staller(), ctx)

    def test_phantom_group_detected(self, ctx):
        from repro.core import PlannedGroup

        class Phantom(OnlinePolicy):
            name = "phantom"

            def next_group(self, now, ctx):
                if self.waiting:
                    self.waiting.clear()
                    ghost = ("ghost", make_tiny_spec("ghost"))
                    return PlannedGroup(members=[ghost])
                return None

        with pytest.raises(RuntimeError, match="before"):
            run_stream([Arrival(0, "app0", make_tiny_spec("app0"))],
                       Phantom(), ctx)

    def test_empty_stream(self, ctx):
        out = run_stream([], OnlineFCFS(2), ctx)
        assert out.makespan == 0
        assert out.groups == []
        assert out.records == {}

"""Speculation layer tests: purity keys, the store, stream equality.

The contract under test: speculation may only change *when* a group is
simulated, never *what* any caller observes — a store hit is
bit-identical to simulating on demand, a misprediction is discarded
unobserved, and every counter is deterministic for any worker count.
"""

import pytest

from repro.core import make_context
from repro.core.policies import PlannedGroup
from repro.core.scheduler import run_group
from repro.runtime import (Arrival, OnlineFCFS, OnlinePolicy,
                           ParallelExecutor, SerialExecutor,
                           SpeculationStrategy, SpeculativeSimulator,
                           make_speculation, run_stream)
from repro.runtime.speculation import group_key, outcome_fingerprint

from ..conftest import make_tiny_spec


def specs(n):
    return {f"app{i}": make_tiny_spec(f"app{i}", seed=i) for i in range(n)}


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def full_strategy(**overrides):
    params = dict(kind="full", groups=True, run_ahead=True,
                  commit_check=True)
    params.update(overrides)
    return SpeculationStrategy(**params)


class TestGroupKey:
    def test_equal_groups_share_a_key(self, ctx):
        suite = list(specs(2).items())
        a = PlannedGroup(members=list(suite))
        b = PlannedGroup(members=list(suite))
        key = group_key(a, ctx.config, ctx.smra_params, 1000)
        assert key == group_key(b, ctx.config, ctx.smra_params, 1000)
        assert hash(key) == hash(
            group_key(b, ctx.config, ctx.smra_params, 1000))

    def test_key_separates_every_purity_input(self, ctx):
        suite = list(specs(3).items())
        base = PlannedGroup(members=suite[:2])
        key = group_key(base, ctx.config, ctx.smra_params, 1000)
        others = [
            group_key(PlannedGroup(members=suite[1:]), ctx.config,
                      ctx.smra_params, 1000),
            group_key(PlannedGroup(members=suite[:2], use_smra=True),
                      ctx.config, ctx.smra_params, 1000),
            group_key(PlannedGroup(members=suite[:2],
                                   partitions=[[0], [1]]),
                      ctx.config, ctx.smra_params, 1000),
            group_key(base, ctx.config, ctx.smra_params, 2000),
        ]
        assert all(other != key for other in others)

    def test_fingerprint_matches_reruns(self, ctx):
        group = PlannedGroup(members=list(specs(2).items()))
        first = run_group(group, ctx.config, ctx.smra_params, 100000)
        second = run_group(group, ctx.config, ctx.smra_params, 100000)
        assert outcome_fingerprint(first) == outcome_fingerprint(second)


class TestStrategyValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="depth"):
            SpeculationStrategy(kind="groups", groups=True, depth=0)
        with pytest.raises(ValueError, match="depth"):
            SpeculationStrategy(kind="groups", groups=True, depth=True)

    def test_rejects_bad_commit_check(self):
        with pytest.raises(ValueError, match="commit_check"):
            SpeculationStrategy(kind="groups", groups=True,
                                commit_check=1)

    def test_make_speculation_none_builds_nothing(self):
        assert make_speculation(None, SerialExecutor()) is None


class TestStoreProtocol:
    def test_hit_pops_and_counts(self, ctx):
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        group = PlannedGroup(members=list(specs(2).items()))
        policy = OnlineFCFS(2)
        policy.waiting = list(group.members)
        sim.predict("t", policy, 0, ctx, 100000)
        assert sim.counters.submitted == 1
        outcome = sim.fetch("t", group, ctx.config, ctx.smra_params, 100000)
        assert list(outcome.members) == [n for n, _s in group.members]
        assert sim.counters.hits == 1
        assert sim.counters.misses == 0
        # The hit was popped: fetching again simulates on demand.
        sim.fetch("t", group, ctx.config, ctx.smra_params, 100000)
        assert sim.counters.misses == 1

    def test_miss_discards_stale_chain_but_not_fresh(self, ctx):
        suite = list(specs(6).items())
        sim = SpeculativeSimulator(SerialExecutor(),
                                   full_strategy(depth=2))
        stale = OnlineFCFS(2)
        stale.waiting = suite[:2]
        sim.predict("t", stale, 0, ctx, 100000)
        assert sim.counters.submitted == 1
        # A new prediction round with a diverged queue, then a fetch
        # that misses: the first round's entry is stale and drops,
        # the current round's survives for the *next* launch.
        fresh = OnlineFCFS(2)
        fresh.waiting = suite[2:4]
        sim.predict("t", fresh, 0, ctx, 100000)
        assert sim.counters.submitted == 2
        probe = PlannedGroup(members=[suite[0], suite[3]])
        sim.fetch("t", probe, ctx.config, ctx.smra_params, 100000)
        assert sim.counters.misses == 1
        assert sim.counters.discarded == 1
        outcome = sim.fetch("t", PlannedGroup(members=suite[2:4]),
                            ctx.config, ctx.smra_params, 100000)
        assert sim.counters.hits == 1
        assert list(outcome.members) == [n for n, _s in suite[2:4]]

    def test_close_discards_everything(self, ctx):
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        policy = OnlineFCFS(2)
        policy.waiting = list(specs(4).items())
        sim.predict("a", policy, 0, ctx, 100000)
        sim.predict("b", policy, 0, ctx, 100000)
        submitted = sim.counters.submitted
        sim.close()
        assert sim.counters.discarded == submitted

    def test_commit_check_catches_poisoned_store(self, ctx):
        suite = list(specs(4).items())
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        right = PlannedGroup(members=suite[:2])
        wrong = PlannedGroup(members=suite[2:])
        poison = run_group(wrong, ctx.config, ctx.smra_params, 100000)
        # Stash a *different* group's outcome under `right`'s key.
        sim.stash("t", right, ctx.config, ctx.smra_params, 100000, poison)
        with pytest.raises(RuntimeError, match="commit check"):
            sim.fetch("t", right, ctx.config, ctx.smra_params, 100000)

    def test_stash_serves_a_relaunch(self, ctx):
        suite = list(specs(2).items())
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        group = PlannedGroup(members=suite)
        outcome = run_group(group, ctx.config, ctx.smra_params, 100000)
        sim.stash("t", group, ctx.config, ctx.smra_params, 100000, outcome)
        served = sim.fetch("t", group, ctx.config, ctx.smra_params, 100000)
        assert outcome_fingerprint(served) == outcome_fingerprint(outcome)
        assert sim.counters.hits == 1


class _CloneRaises(OnlineFCFS):
    """A policy that refuses prediction probes."""

    def clone_for_prediction(self):
        raise RuntimeError("unclonable")


class _CloneLies(OnlineFCFS):
    """A policy whose prediction clone reverses its queue: every
    prediction is wrong, so every launch must be a store miss."""

    def clone_for_prediction(self):
        probe = OnlineFCFS(self.nc)
        probe.waiting = list(reversed(self.waiting))
        return probe


class TestStreamSpeculation:
    def arrivals(self, n):
        return [Arrival(0, name, spec)
                for name, spec in specs(n).items()]

    def test_stream_results_identical_with_hits(self, ctx):
        arrivals = self.arrivals(8)
        plain = run_stream(arrivals, OnlineFCFS(2), ctx)
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        spec = run_stream(arrivals, OnlineFCFS(2), ctx, speculation=sim)
        assert spec.makespan == plain.makespan
        assert ([g.outcome.members for g in spec.groups]
                == [g.outcome.members for g in plain.groups])
        assert [r.finish_cycle for r in spec.records.values()] \
            == [r.finish_cycle for r in plain.records.values()]
        # A fully backlogged FCFS stream is perfectly predictable:
        # every launch after the first is a hit.
        assert sim.counters.hits == len(plain.groups) - 1
        assert sim.counters.misses == 1

    def test_misprediction_never_leaks_into_results(self, ctx):
        arrivals = self.arrivals(8)
        plain = run_stream(arrivals, OnlineFCFS(2), ctx)
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        spec = run_stream(arrivals, _CloneLies(2), ctx, speculation=sim)
        assert sim.counters.hits == 0
        assert sim.counters.misses == len(plain.groups)
        assert sim.counters.discarded == sim.counters.submitted > 0
        # Every discarded speculation stayed unobserved: the schedule
        # is the plain FCFS one.
        assert spec.makespan == plain.makespan
        assert ([g.outcome.members for g in spec.groups]
                == [g.outcome.members for g in plain.groups])

    def test_unclonable_policy_disables_prediction(self, ctx):
        arrivals = self.arrivals(6)
        plain = run_stream(arrivals, OnlineFCFS(2), ctx)
        sim = SpeculativeSimulator(SerialExecutor(), full_strategy())
        spec = run_stream(arrivals, _CloneRaises(2), ctx, speculation=sim)
        assert sim.counters.submitted == 0
        assert spec.makespan == plain.makespan

    def test_counters_identical_across_worker_counts(self, ctx):
        arrivals = self.arrivals(8)
        serial_sim = SpeculativeSimulator(SerialExecutor(),
                                          full_strategy())
        serial = run_stream(arrivals, OnlineFCFS(2), ctx,
                            speculation=serial_sim)
        with ParallelExecutor(2) as pool:
            pool_sim = SpeculativeSimulator(pool, full_strategy())
            parallel = run_stream(arrivals, OnlineFCFS(2), ctx,
                                  speculation=pool_sim)
        assert serial_sim.counters.to_dict() == pool_sim.counters.to_dict()
        assert serial.makespan == parallel.makespan
        assert ([g.outcome.members for g in serial.groups]
                == [g.outcome.members for g in parallel.groups])

"""Executor tests: parallel execution must be bit-identical to serial."""

import pytest

from repro.core import (EvenPolicy, PlannedGroup, Profiler, SMRAParams,
                        make_context, measure_interference, run_group,
                        run_queue)
from repro.gpusim import small_test_config
from repro.runtime import (ParallelExecutor, SerialExecutor, make_executor,
                           workers_from_env)

from ..conftest import make_tiny_spec

STAT_FIELDS = ("warp_instructions", "thread_instructions", "alu_instructions",
               "mem_instructions", "mem_transactions", "l1_hits", "l2_hits",
               "dram_accesses", "dram_row_hits", "dram_bytes",
               "l2_to_l1_bytes", "blocks_completed", "start_cycle",
               "finish_cycle")


def tiny_suite():
    return {
        "mem": make_tiny_spec("mem", mem_fraction=0.4, blocks=8,
                              working_set_kb=8192, pattern="random",
                              tx_per_access=8, seed=1),
        "comp": make_tiny_spec("comp", mem_fraction=0.01, blocks=8, seed=2),
        "cache": make_tiny_spec("cache", mem_fraction=0.3, blocks=4,
                                working_set_kb=48, pattern="random",
                                tx_per_access=4, dep_gap=4.0, seed=3),
        "small": make_tiny_spec("small", blocks=2, instr_per_warp=40, seed=4),
    }


def planned_groups():
    suite = tiny_suite()
    entries = list(suite.items())
    return [PlannedGroup(members=entries[:2]),
            PlannedGroup(members=entries[2:], use_smra=True)]


@pytest.fixture(scope="module")
def pool():
    executor = ParallelExecutor(workers=2)
    yield executor
    executor.close()


def assert_outcomes_identical(a, b):
    assert a.members == b.members
    assert a.cycles == b.cycles
    assert set(a.result.app_stats) == set(b.result.app_stats)
    for app_id, stats in a.result.app_stats.items():
        other = b.result.app_stats[app_id]
        for field in STAT_FIELDS:
            assert getattr(stats, field) == getattr(other, field), (
                f"app {app_id} field {field}")


class TestMakeExecutor:
    def test_default_is_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_multi_worker_is_parallel(self):
        ex = make_executor(2)
        assert isinstance(ex, ParallelExecutor)
        assert ex.workers == 2
        ex.close()

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ValueError, match="workers must be"):
            make_executor(bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_parallel_executor_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="workers must be"):
            ParallelExecutor(bad)

    def test_context_manager_closes(self):
        with ParallelExecutor(2) as ex:
            assert ex.run_pairs(small_test_config(), []) == []
        assert ex._pool is None


class TestWorkersFromEnv:
    def test_unset_and_empty_use_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env() == 1
        assert workers_from_env(default=3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert workers_from_env() == 1

    def test_valid_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        assert workers_from_env() == 4

    @pytest.mark.parametrize("bad", ["O", "2.5", "-1", "0"])
    def test_invalid_value_names_the_variable(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            workers_from_env()


class TestRunGroups:
    def test_serial_matches_direct_run_group(self, small_cfg):
        groups = planned_groups()
        params = SMRAParams(interval=500)
        direct = [run_group(g, small_cfg, params) for g in planned_groups()]
        via_exec = SerialExecutor().run_groups(groups, small_cfg, params)
        for a, b in zip(direct, via_exec):
            assert_outcomes_identical(a, b)

    def test_parallel_identical_to_serial(self, small_cfg, pool):
        params = SMRAParams(interval=500)
        serial = SerialExecutor().run_groups(planned_groups(), small_cfg,
                                             params)
        parallel = pool.run_groups(planned_groups(), small_cfg, params)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert_outcomes_identical(a, b)

    def test_parallel_preserves_smra_controller(self, small_cfg, pool):
        outcomes = pool.run_groups(planned_groups(), small_cfg,
                                   SMRAParams(interval=500))
        assert outcomes[0].smra is None
        assert outcomes[1].smra is not None

    def test_empty_groups(self, small_cfg, pool):
        assert pool.run_groups([], small_cfg) == []
        assert SerialExecutor().run_groups([], small_cfg) == []


class TestRunPairs:
    def test_parallel_identical_to_serial(self, small_cfg, pool):
        suite = tiny_suite()
        pairs = [(("mem", suite["mem"]), ("comp#co", suite["comp"])),
                 (("cache", suite["cache"]), ("small#co", suite["small"]))]
        assert (SerialExecutor().run_pairs(small_cfg, pairs) ==
                pool.run_pairs(small_cfg, pairs))


class TestRunProfiles:
    def test_parallel_identical_to_inline(self, small_cfg, pool):
        entries = list(tiny_suite().items())
        profiler = Profiler(small_cfg)
        inline = [profiler.profile(n, s) for n, s in entries]
        assert pool.run_profiles(small_cfg, entries) == inline

    def test_workers_populate_disk_cache(self, small_cfg, pool, tmp_path):
        entries = list(tiny_suite().items())[:2]
        metrics = pool.run_profiles(small_cfg, entries, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("profile_*.json"))) == 2
        # A fresh profiler reads the worker-written entries: zero sims.
        reader = Profiler(small_cfg, cache_dir=tmp_path)
        for (name, spec), m in zip(entries, metrics):
            assert reader.profile(name, spec) == m
        assert reader.simulations_run == 0

    def test_prime_avoids_resimulation(self, small_cfg, pool):
        entries = list(tiny_suite().items())[:1]
        (metrics,) = pool.run_profiles(small_cfg, entries)
        profiler = Profiler(small_cfg)
        profiler.prime(entries[0][1], metrics)
        assert profiler.peek(entries[0][1]) == metrics
        assert profiler.profile(*entries[0]) == metrics
        assert profiler.simulations_run == 0


class TestParallelInterference:
    def test_matrix_identical_to_serial(self, small_cfg, pool):
        suite = tiny_suite()
        serial = measure_interference(small_cfg, suite, samples_per_pair=1)
        parallel = measure_interference(small_cfg, suite, samples_per_pair=1,
                                        executor=pool)
        assert serial.slowdown == parallel.slowdown
        assert serial.samples == parallel.samples


class TestParallelRunQueue:
    def test_bit_identical_queue_drain(self, small_cfg, pool):
        ctx = make_context(small_cfg)
        queue = list(tiny_suite().items())
        serial = run_queue(queue, EvenPolicy(2), ctx)
        parallel = run_queue(queue, EvenPolicy(2), ctx, executor=pool)
        assert serial.policy == parallel.policy
        assert serial.total_cycles == parallel.total_cycles
        assert serial.total_instructions == parallel.total_instructions
        for a, b in zip(serial.groups, parallel.groups):
            assert_outcomes_identical(a, b)

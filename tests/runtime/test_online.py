"""Online policy tests: adapters, FCFS, and class-aware backfill."""

import pytest

from repro.core import (AppClass, EvenPolicy, FCFSPolicy, ILPPolicy,
                        InterferenceModel, PolicyContext, Profiler,
                        ClassificationThresholds, make_context)
from repro.gpusim import small_test_config
from repro.runtime import (BatchPolicyAdapter, ClassAwareBackfill,
                           OnlineFCFS, online_policy)

from ..conftest import make_tiny_spec


def entries(n, prefix="app"):
    return [(f"{prefix}{i}", make_tiny_spec(f"{prefix}{i}", seed=i))
            for i in range(n)]


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def feed(policy, items, ctx, now=0):
    for entry in items:
        policy.on_arrival(entry, now, ctx)


class TestOnlineFCFS:
    def test_groups_in_arrival_order(self, ctx):
        policy = OnlineFCFS(2)
        feed(policy, entries(5), ctx)
        groups = []
        while policy.pending:
            groups.append(policy.next_group(0, ctx))
        names = [[n for n, _ in g.members] for g in groups]
        assert names == [["app0", "app1"], ["app2", "app3"], ["app4"]]

    def test_idle_returns_none(self, ctx):
        assert OnlineFCFS(2).next_group(0, ctx) is None

    def test_work_conserving_partial_group(self, ctx):
        policy = OnlineFCFS(3)
        feed(policy, entries(1), ctx)
        group = policy.next_group(0, ctx)
        assert [n for n, _ in group.members] == ["app0"]
        assert not policy.pending

    def test_rejects_bad_nc(self):
        with pytest.raises(ValueError):
            OnlineFCFS(0)


class TestBatchPolicyAdapter:
    def test_reproduces_batch_plan(self, ctx):
        queue = entries(5)
        batch_groups = EvenPolicy(2).plan(queue, ctx)
        adapter = BatchPolicyAdapter(EvenPolicy(2))
        feed(adapter, queue, ctx)
        online_groups = []
        while adapter.pending:
            online_groups.append(adapter.next_group(0, ctx))
        assert ([g.members for g in online_groups] ==
                [g.members for g in batch_groups])

    def test_takes_policy_name(self):
        assert BatchPolicyAdapter(FCFSPolicy(2)).name == "FCFS"
        assert BatchPolicyAdapter(ILPPolicy(2)).name == "ILP"

    def test_empty_plan_raises_instead_of_dropping_apps(self, ctx):
        class NoOpPolicy(EvenPolicy):
            name = "NoOp"

            def plan(self, queue, ctx):
                return []

        adapter = BatchPolicyAdapter(NoOpPolicy(2))
        feed(adapter, entries(2), ctx)
        with pytest.raises(RuntimeError, match="planned no groups"):
            adapter.next_group(0, ctx)
        assert adapter.pending  # nothing was silently discarded

    def test_replans_per_backlog_window(self, ctx):
        adapter = BatchPolicyAdapter(EvenPolicy(2))
        first = entries(2, "early")
        feed(adapter, first, ctx)
        assert [n for n, _ in adapter.next_group(0, ctx).members] == \
            ["early0", "early1"]
        # Later arrivals get their own plan.
        feed(adapter, entries(2, "late"), ctx, now=100)
        assert [n for n, _ in adapter.next_group(100, ctx).members] == \
            ["late0", "late1"]
        assert adapter.next_group(200, ctx) is None


def _matrix(overrides=None):
    """A hand-built slowdown matrix; indices follow (M, MC, C, A)."""
    base = [[1.0] * 4 for _ in range(4)]
    order = [AppClass.M, AppClass.MC, AppClass.C, AppClass.A]
    for (victim, aggressor), value in (overrides or {}).items():
        base[order.index(victim)][order.index(aggressor)] = value
    return InterferenceModel(slowdown=tuple(tuple(r) for r in base))


@pytest.fixture
def backfill_ctx(small_cfg):
    """A context with a synthetic interference model: M hurts M badly,
    A is harmless."""
    model = _matrix({
        (AppClass.M, AppClass.M): 3.0,
        (AppClass.M, AppClass.A): 1.1,
        (AppClass.A, AppClass.M): 1.2,
        (AppClass.A, AppClass.A): 1.05,
    })
    return PolicyContext(
        config=small_cfg, profiler=Profiler(small_cfg),
        thresholds=ClassificationThresholds.for_device(small_cfg),
        interference=model)


class TestClassAwareBackfill:
    def test_anchor_is_oldest_waiting(self, backfill_ctx):
        policy = ClassAwareBackfill(2, classes={
            "m0": AppClass.M, "m1": AppClass.M, "a0": AppClass.A})
        feed(policy, [(n, make_tiny_spec(n)) for n in ("m0", "m1", "a0")],
             backfill_ctx)
        group = policy.next_group(0, backfill_ctx)
        assert [n for n, _ in group.members][0] == "m0"

    def test_backfills_least_interfering_partner(self, backfill_ctx):
        """With an M anchor, the A app is chosen over the older M app:
        S(M|A)+S(A|M) = 2.3 beats S(M|M)+S(M|M) = 6.0."""
        policy = ClassAwareBackfill(2, classes={
            "m0": AppClass.M, "m1": AppClass.M, "a0": AppClass.A})
        feed(policy, [(n, make_tiny_spec(n)) for n in ("m0", "m1", "a0")],
             backfill_ctx)
        first = policy.next_group(0, backfill_ctx)
        assert [n for n, _ in first.members] == ["m0", "a0"]
        second = policy.next_group(0, backfill_ctx)
        assert [n for n, _ in second.members] == ["m1"]
        assert not policy.pending

    def test_ties_keep_arrival_order(self, backfill_ctx):
        policy = ClassAwareBackfill(2, classes={
            "a0": AppClass.A, "a1": AppClass.A, "a2": AppClass.A})
        feed(policy, [(n, make_tiny_spec(n)) for n in ("a0", "a1", "a2")],
             backfill_ctx)
        group = policy.next_group(0, backfill_ctx)
        assert [n for n, _ in group.members] == ["a0", "a1"]

    def test_without_model_degrades_to_fcfs(self, ctx):
        policy = ClassAwareBackfill(2)
        feed(policy, entries(3), ctx)
        group = policy.next_group(0, ctx)
        assert [n for n, _ in group.members] == ["app0", "app1"]

    def test_smra_flag(self, backfill_ctx):
        policy = ClassAwareBackfill(2, use_smra=True, classes={
            "m0": AppClass.M, "a0": AppClass.A})
        feed(policy, [(n, make_tiny_spec(n)) for n in ("m0", "a0")],
             backfill_ctx)
        assert policy.next_group(0, backfill_ctx).use_smra

    def test_classifies_via_profiler_when_not_supplied(self, ctx):
        policy = ClassAwareBackfill(2)
        model_ctx = PolicyContext(
            config=ctx.config, profiler=ctx.profiler,
            thresholds=ctx.thresholds, interference=_matrix())
        feed(policy, entries(2), model_ctx)
        group = policy.next_group(0, model_ctx)
        assert len(group.members) == 2
        assert set(policy._classes) == {"app0", "app1"}


class TestRegistry:
    def test_known_keys(self):
        from repro.api import REGISTRY
        assert {"serial", "fcfs", "even", "profile", "ilp", "ilp-smra",
                "backfill", "backfill-smra"} <= \
            set(REGISTRY.names("online-policies"))

    def test_factory_instances(self):
        assert isinstance(online_policy("fcfs", 2), OnlineFCFS)
        assert isinstance(online_policy("backfill", 2), ClassAwareBackfill)
        assert isinstance(online_policy("ilp", 2), BatchPolicyAdapter)
        assert online_policy("backfill-smra", 2).use_smra

    def test_smra_variant_has_distinct_name(self):
        assert online_policy("backfill", 2).name == "Backfill"
        assert online_policy("backfill-smra", 2).name == "Backfill-SMRA"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            online_policy("magic", 2)

"""Shard planner tests: determinism, chunking, content addressing."""

import dataclasses

from repro.campaign import CampaignSpec, ShardSpec, plan_campaign

from .conftest import tiny_stream_scenario


class TestByPoint:
    def test_one_shard_per_point(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        assert len(plan.shards) == 3
        assert plan.total_units == 3
        assert [s.index for s in plan.shards] == [0, 1, 2]
        seeds = [s.units[0].scenario.workload.seed for s in plan.shards]
        assert seeds == [1, 2, 3]

    def test_single_unit_shard_hash_is_scenario_hash(self, tiny_campaign):
        # The content address sweep manifests already carry — what lets
        # a campaign resume from an old sweep output directory.
        plan = plan_campaign(tiny_campaign)
        for shard in plan.shards:
            assert shard.spec_hash == shard.units[0].scenario.spec_hash()

    def test_chunking(self, tiny_campaign):
        spec = dataclasses.replace(tiny_campaign,
                                   shard=ShardSpec(max_shard_size=2))
        plan = plan_campaign(spec)
        assert [len(s.units) for s in plan.shards] == [2, 1]
        assert plan.total_units == 3

    def test_deterministic(self, tiny_campaign):
        a, b = plan_campaign(tiny_campaign), plan_campaign(tiny_campaign)
        assert [s.spec_hash for s in a.shards] == \
            [s.spec_hash for s in b.shards]
        assert [s.filename for s in a.shards] == \
            [s.filename for s in b.shards]
        assert a.campaign_hash == b.campaign_hash

    def test_filenames_carry_index_and_hash(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        for shard in plan.shards:
            assert shard.filename == (f"tiny-campaign_shard_"
                                      f"{shard.index:04d}_"
                                      f"{shard.spec_hash[:10]}.json")

    def test_overrides_recorded(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        assert plan.shards[0].units[0].overrides == {"workload.seed": 1}

    def test_empty_grid_single_shard(self):
        plan = plan_campaign(CampaignSpec(base=tiny_stream_scenario()))
        assert len(plan.shards) == 1
        assert plan.shards[0].units[0].scenario == tiny_stream_scenario()


class TestByTraceSlice:
    def _spec(self, apps, slice_apps):
        return CampaignSpec(
            base=tiny_stream_scenario(apps=apps),
            shard=ShardSpec(strategy="by-trace-slice",
                            slice_apps=slice_apps))

    def test_slices_cover_stream(self):
        plan = plan_campaign(self._spec(apps=10, slice_apps=4))
        # ceil(10 / 4) = 3 slices.
        assert plan.total_units == 3
        slices = [s.units[0].scenario.workload.slice
                  for s in plan.shards]
        assert slices == [(0, 3), (1, 3), (2, 3)]

    def test_slice_overrides_recorded(self):
        plan = plan_campaign(self._spec(apps=10, slice_apps=4))
        assert plan.shards[0].units[0].overrides == {
            "workload.slice": [0, 3]}

    def test_small_stream_stays_unsliced(self):
        plan = plan_campaign(self._spec(apps=4, slice_apps=10))
        assert plan.total_units == 1
        scenario = plan.shards[0].units[0].scenario
        assert scenario.workload.slice is None
        # An unsliced slice unit hashes like the plain point — old
        # sweep outputs of the same point resume it.
        assert plan.shards[0].spec_hash == scenario.spec_hash()

    def test_sliced_units_run_distinct_arrivals(self):
        from repro.api import build_arrivals
        plan = plan_campaign(self._spec(apps=10, slice_apps=4))
        names = []
        for shard in plan.shards:
            names.extend(a.name for a in
                         build_arrivals(shard.units[0].scenario))
        full = build_arrivals(tiny_stream_scenario(apps=10))
        # Concatenated slices reproduce the full stream exactly.
        assert names == [a.name for a in full]

"""Shared campaign test fixtures: one tiny, fast base scenario."""

import pytest

from repro.api import PolicySpec, Scenario, WorkloadSpec
from repro.campaign import CampaignSpec, ShardSpec


def tiny_stream_scenario(**workload_overrides):
    workload = dict(source="stream", apps=4, synthetic_fraction=0.0,
                    scale=0.1, seed=11, arrival="poisson",
                    mean_gap=4000.0)
    workload.update(workload_overrides)
    return Scenario(kind="stream", name="tiny",
                    workload=WorkloadSpec(**workload),
                    policy=PolicySpec(name="fcfs", nc=2))


@pytest.fixture
def tiny_campaign():
    """Three one-point shards over seeds 1..3."""
    return CampaignSpec(base=tiny_stream_scenario(),
                        grid={"workload.seed": [1, 2, 3]},
                        shard=ShardSpec(strategy="by-point",
                                        max_shard_size=1),
                        name="tiny-campaign")

"""CampaignSpec / ShardSpec: validation, round-trip, identity."""

import pytest

from repro.api import REGISTRY
from repro.campaign import RESUME_POLICIES, CampaignSpec, ShardSpec

from .conftest import tiny_stream_scenario


class TestShardSpec:
    def test_defaults(self):
        shard = ShardSpec()
        assert shard.strategy == "by-point"
        assert shard.max_shard_size == 1
        assert shard.slice_apps == 0

    def test_strategies_are_registry_components(self):
        names = REGISTRY.names("shard-strategies")
        assert "by-point" in names
        assert "by-trace-slice" in names

    def test_unknown_strategy_rejected_with_suggestions(self):
        from repro.api import RegistryError
        with pytest.raises(RegistryError, match="did you mean "
                           "'by-point'"):
            ShardSpec(strategy="by-pont")

    def test_max_shard_size_validated(self):
        with pytest.raises(ValueError, match="max_shard_size"):
            ShardSpec(max_shard_size=0)
        with pytest.raises(ValueError, match="max_shard_size"):
            ShardSpec(max_shard_size=True)

    def test_slice_apps_requires_trace_slice_strategy(self):
        with pytest.raises(ValueError, match="slice_apps"):
            ShardSpec(strategy="by-point", slice_apps=5)
        with pytest.raises(ValueError, match="slice_apps"):
            ShardSpec(strategy="by-trace-slice")  # needs >= 1
        shard = ShardSpec(strategy="by-trace-slice", slice_apps=5)
        assert shard.slice_apps == 5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ShardSpec.from_dict({"strtegy": "by-point"})


class TestCampaignSpec:
    def test_round_trip(self, tiny_campaign):
        rebuilt = CampaignSpec.from_json(tiny_campaign.to_json())
        assert rebuilt == tiny_campaign
        assert rebuilt.to_json() == tiny_campaign.to_json()

    def test_base_and_shard_decode_from_mappings(self, tiny_campaign):
        data = tiny_campaign.to_dict()
        spec = CampaignSpec(base=data["base"], grid=data["grid"],
                            shard=data["shard"])
        assert spec.base == tiny_campaign.base
        assert spec.shard == tiny_campaign.shard

    def test_empty_grid_is_one_point(self):
        spec = CampaignSpec(base=tiny_stream_scenario())
        assert spec.grid == {}

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="grid"):
            CampaignSpec(base=tiny_stream_scenario(),
                         grid={"workload.seed": []})
        with pytest.raises(ValueError, match="grid"):
            CampaignSpec(base=tiny_stream_scenario(),
                         grid={"workload.seed": "abc"})
        with pytest.raises(ValueError, match="grid"):
            CampaignSpec(base=tiny_stream_scenario(),
                         grid={"": [1]})

    def test_unknown_resume_policy_rejected(self):
        assert RESUME_POLICIES == ("verify", "trust")
        with pytest.raises(ValueError, match="resume"):
            CampaignSpec(base=tiny_stream_scenario(), resume="hope")

    def test_unknown_key_rejected(self):
        data = CampaignSpec(base=tiny_stream_scenario()).to_dict()
        data["gird"] = {}
        with pytest.raises(ValueError, match="gird"):
            CampaignSpec.from_dict(data)

    def test_missing_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            CampaignSpec.from_dict({"grid": {}})

    def test_wrong_schema_version_rejected(self, tiny_campaign):
        data = tiny_campaign.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            CampaignSpec.from_dict(data)

    def test_trace_slice_rejects_queue_base(self):
        from repro.api import PolicySpec, Scenario, WorkloadSpec
        queue = Scenario(kind="queue",
                         workload=WorkloadSpec(source="distribution",
                                               distribution="M",
                                               length=8, seed=7),
                         policy=PolicySpec(name="fcfs", nc=2))
        with pytest.raises(ValueError, match="arrival"):
            CampaignSpec(base=queue,
                         shard=ShardSpec(strategy="by-trace-slice",
                                         slice_apps=2))

    def test_sliced_base_rejected(self):
        with pytest.raises(ValueError, match="unsliced"):
            CampaignSpec(base=tiny_stream_scenario(slice=(0, 2)))


class TestCampaignSpecHash:
    def test_workers_do_not_change_identity(self, tiny_campaign):
        data = tiny_campaign.to_dict()
        data["base"]["execution"]["workers"] = 8
        parallel = CampaignSpec.from_dict(data)
        assert parallel.spec_hash() == tiny_campaign.spec_hash()

    def test_grid_changes_identity(self, tiny_campaign):
        data = tiny_campaign.to_dict()
        data["grid"]["workload.seed"] = [1, 2, 3, 4]
        assert CampaignSpec.from_dict(data).spec_hash() != \
            tiny_campaign.spec_hash()

    def test_shard_strategy_changes_identity(self, tiny_campaign):
        # Sharding changes the unit set, so unlike workers it IS part
        # of the campaign's identity.
        data = tiny_campaign.to_dict()
        data["shard"]["max_shard_size"] = 2
        assert CampaignSpec.from_dict(data).spec_hash() != \
            tiny_campaign.spec_hash()

    def test_stable_across_round_trip(self, tiny_campaign):
        rebuilt = CampaignSpec.from_json(tiny_campaign.to_json())
        assert rebuilt.spec_hash() == tiny_campaign.spec_hash()
        assert len(tiny_campaign.spec_hash()) == 64

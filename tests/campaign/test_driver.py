"""End-to-end campaign driver tests.

The load-bearing one is the ISSUE acceptance criterion: a campaign
killed after k of n shards and rerun with ``--resume`` produces a
merged result **byte-identical** to an uninterrupted run — at
``shard_workers`` 1 and 4 — with spec hashes and per-shard result
hashes verified along the way.
"""

import dataclasses
import json

import pytest

from repro.campaign import (COUNTERS_NAME, CampaignSpec, MergeError,
                            ShardSpec, merge_campaign, plan_campaign,
                            run_campaign, shard_job)

from .conftest import tiny_stream_scenario


def _bytes(path):
    return path.read_bytes()


class TestRunCampaign:
    def test_fresh_run_commits_everything(self, tiny_campaign, tmp_path):
        outcome = run_campaign(tiny_campaign, tmp_path)
        assert outcome.complete
        assert (outcome.shards_total, outcome.shards_skipped,
                outcome.shards_run) == (3, 0, 3)
        manifest = json.loads(_bytes(outcome.manifest_path))
        assert all(row["status"] == "done"
                   for row in manifest["shards"])
        result = json.loads(_bytes(outcome.result_path))
        assert result["metrics"]["shards"] == 3
        assert result["metrics"]["apps"] == 12  # 3 points x 4 apps
        assert result["provenance"]["campaign_hash"] == \
            tiny_campaign.spec_hash()

    def test_kill_resume_byte_identity(self, tiny_campaign, tmp_path):
        # Uninterrupted reference run.
        full = tmp_path / "full"
        run_campaign(tiny_campaign, full)

        for workers in (1, 4):
            out = tmp_path / f"interrupted-w{workers}"
            # "Kill" after 1 of 3 shards: max_shards is the
            # deterministic interruption switch.
            first = run_campaign(tiny_campaign, out, max_shards=1)
            assert not first.complete
            assert first.result is None
            assert first.shards_run == 1
            # Resume with a different worker count than the reference.
            second = run_campaign(tiny_campaign, out, resume=True,
                                  shard_workers=workers)
            assert second.complete
            assert second.shards_skipped == 1
            assert second.shards_run == 2
            assert _bytes(out / "campaign_result.json") == \
                _bytes(full / "campaign_result.json")
            assert _bytes(out / "campaign_manifest.json") == \
                _bytes(full / "campaign_manifest.json")

    def test_resume_of_complete_campaign_skips_all(self, tiny_campaign,
                                                   tmp_path):
        run_campaign(tiny_campaign, tmp_path)
        before = _bytes(tmp_path / "campaign_result.json")
        again = run_campaign(tiny_campaign, tmp_path, resume=True)
        assert again.complete
        assert again.shards_skipped == 3
        assert again.shards_run == 0
        assert _bytes(tmp_path / "campaign_result.json") == before

    def test_without_resume_flag_everything_reruns(self, tiny_campaign,
                                                   tmp_path):
        run_campaign(tiny_campaign, tmp_path)
        again = run_campaign(tiny_campaign, tmp_path)
        assert again.shards_skipped == 0
        assert again.shards_run == 3

    def test_verify_policy_reruns_corrupted_shard(self, tiny_campaign,
                                                  tmp_path):
        outcome = run_campaign(tiny_campaign, tmp_path)
        good = _bytes(tmp_path / "campaign_result.json")
        shard_file = json.loads(_bytes(outcome.manifest_path))[
            "shards"][1]["file"]
        (tmp_path / shard_file).write_text("torn write\n")
        resumed = run_campaign(tiny_campaign, tmp_path, resume=True)
        assert resumed.shards_skipped == 2
        assert resumed.shards_run == 1
        assert _bytes(tmp_path / "campaign_result.json") == good

    def test_counters_are_a_side_channel(self, tiny_campaign, tmp_path):
        outcome = run_campaign(tiny_campaign, tmp_path)
        counters = json.loads(_bytes(tmp_path / COUNTERS_NAME))
        metrics = counters["metrics"]
        assert metrics["campaign.shards.planned"] == 3
        assert metrics["campaign.shards.run"] == 3
        assert metrics["campaign.units.planned"] == 3
        assert metrics["campaign.apps.merged"] == 12
        assert {"plan", "run", "merge"} <= set(counters["phases"])
        # Counters never leak into the merged result (they differ
        # between fresh and resumed runs; the result must not).
        result = json.loads(_bytes(outcome.result_path))
        assert "counters" not in result
        text = result["provenance"]
        assert "phases" not in text

    def test_max_shards_validated(self, tiny_campaign, tmp_path):
        with pytest.raises(ValueError, match="max_shards"):
            run_campaign(tiny_campaign, tmp_path, max_shards=0)

    def test_multi_unit_shards_merge_identically(self, tiny_campaign,
                                                 tmp_path):
        # Same campaign, chunked 2+1 instead of 1+1+1: merged metrics
        # agree with the by-point run on everything except the shard
        # bookkeeping (same units, same records, same fold order).
        chunked = dataclasses.replace(tiny_campaign,
                                      shard=ShardSpec(max_shard_size=2))
        run_campaign(tiny_campaign, tmp_path / "single")
        run_campaign(chunked, tmp_path / "chunked")
        single = json.loads(_bytes(
            tmp_path / "single" / "campaign_result.json"))
        multi = json.loads(_bytes(
            tmp_path / "chunked" / "campaign_result.json"))
        assert multi["metrics"]["shards"] == 2
        for key, value in single["metrics"].items():
            if key == "shards":
                continue
            assert multi["metrics"][key] == pytest.approx(
                value, rel=1e-12), key

    def test_trace_slice_campaign_covers_all_arrivals(self, tmp_path):
        spec = CampaignSpec(
            base=tiny_stream_scenario(apps=10),
            shard=ShardSpec(strategy="by-trace-slice", slice_apps=4),
            name="sliced")
        outcome = run_campaign(spec, tmp_path)
        assert outcome.complete
        result = json.loads(_bytes(outcome.result_path))
        assert result["metrics"]["units"] == 3
        assert result["metrics"]["apps"] == 10


class TestShardJob:
    def test_single_unit_matches_repro_run_bytes(self, tiny_campaign):
        from repro.api import run_scenario
        from repro.runtime import SerialExecutor
        scenario = plan_campaign(tiny_campaign).shards[0].units[0] \
            .scenario
        text = shard_job([scenario.to_dict()])
        direct = run_scenario(scenario, executor=SerialExecutor())
        assert text == direct.to_json()

    def test_multi_unit_wrapper(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        dicts = [s.units[0].scenario.to_dict() for s in plan.shards[:2]]
        data = json.loads(shard_job(dicts))
        assert data["kind"] == "campaign-shard"
        assert len(data["results"]) == 2


class TestMergeErrors:
    def test_incomplete_campaign_refused(self, tiny_campaign, tmp_path):
        from repro.campaign import manifest_dict
        plan = plan_campaign(tiny_campaign)
        with pytest.raises(MergeError, match="not committed"):
            merge_campaign(plan, tmp_path, manifest_dict(plan))

    def test_hash_mismatch_refused(self, tiny_campaign, tmp_path):
        outcome = run_campaign(tiny_campaign, tmp_path)
        manifest = json.loads(_bytes(outcome.manifest_path))
        shard_file = manifest["shards"][0]["file"]
        (tmp_path / shard_file).write_text("{}\n")
        plan = plan_campaign(tiny_campaign)
        with pytest.raises(MergeError, match="hash"):
            merge_campaign(plan, tmp_path, manifest)

    def test_missing_file_refused(self, tiny_campaign, tmp_path):
        outcome = run_campaign(tiny_campaign, tmp_path)
        manifest = json.loads(_bytes(outcome.manifest_path))
        (tmp_path / manifest["shards"][2]["file"]).unlink()
        plan = plan_campaign(tiny_campaign)
        with pytest.raises(MergeError, match="missing"):
            merge_campaign(plan, tmp_path, manifest)


class TestSweepDirResume:
    def test_campaign_resumes_from_sweep_output(self, tiny_campaign,
                                                tmp_path, capsys):
        # A repro sweep over the same base x grid leaves point files
        # plus sweep_manifest.json; the campaign recognizes them as
        # committed single-unit shards (shared content addressing) and
        # goes straight to the merge.
        from repro.cli import main
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps({
            "base": tiny_campaign.base.to_dict(),
            "grid": tiny_campaign.grid}))
        out = tmp_path / "out"
        assert main(["sweep", str(sweep), "--out-dir", str(out)]) == 0
        outcome = run_campaign(tiny_campaign, out, resume=True)
        assert outcome.complete
        assert outcome.shards_skipped == 3
        assert outcome.shards_run == 0
        result = json.loads(_bytes(outcome.result_path))
        assert result["metrics"]["apps"] == 12

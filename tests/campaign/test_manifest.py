"""Manifest contract tests: rows, sweep fallback, commit verification."""

import json

import pytest

from repro.campaign import (MANIFEST_SCHEMA_VERSION, atomic_write,
                            committed_shards, load_manifest,
                            manifest_dict, plan_campaign, result_hash,
                            write_manifest)


class TestManifestDict:
    def test_rows_cover_every_shard(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        data = manifest_dict(plan)
        assert data["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert data["kind"] == "campaign"
        assert data["campaign_hash"] == plan.campaign_hash
        assert data["name"] == "tiny-campaign"
        assert len(data["shards"]) == 3
        row = data["shards"][0]
        assert row["index"] == 0
        assert row["file"] == plan.shards[0].filename
        assert row["spec_hash"] == plan.shards[0].spec_hash
        assert row["units"] == 1
        assert row["overrides"] == [{"workload.seed": 1}]
        assert row["status"] == "pending"
        assert row["result_hash"] is None

    def test_statuses_override_rows(self, tiny_campaign):
        plan = plan_campaign(tiny_campaign)
        data = manifest_dict(plan, {1: {"status": "done",
                                        "result_hash": "abc"}})
        assert data["shards"][0]["status"] == "pending"
        assert data["shards"][1]["status"] == "done"
        assert data["shards"][1]["result_hash"] == "abc"


class TestLoadManifest:
    def test_missing_directory_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_round_trip(self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        write_manifest(tmp_path, manifest_dict(plan))
        assert load_manifest(tmp_path) == manifest_dict(plan)

    def test_sweep_fallback_translates_points(self, tmp_path):
        (tmp_path / "sweep_manifest.json").write_text(json.dumps({
            "schema_version": 1,
            "kind": "sweep",
            "points": [{"index": 0, "file": "p0.json",
                        "spec_hash": "aa", "status": "done",
                        "result_hash": "bb",
                        "overrides": {"workload.seed": 1}}],
        }))
        data = load_manifest(tmp_path)
        assert data["kind"] == "sweep"
        row = data["shards"][0]
        assert row["file"] == "p0.json"
        assert row["status"] == "done"
        assert row["result_hash"] == "bb"
        assert row["overrides"] == [{"workload.seed": 1}]

    def test_pre_v1_sweep_points_default_to_done(self, tmp_path):
        # Old sweeps wrote every point before the manifest, with no
        # status/result_hash fields.
        (tmp_path / "sweep_manifest.json").write_text(json.dumps({
            "points": [{"index": 0, "file": "p0.json",
                        "spec_hash": "aa"}]}))
        row = load_manifest(tmp_path)["shards"][0]
        assert row["status"] == "done"
        assert row["result_hash"] is None

    def test_future_version_rejected(self, tmp_path):
        (tmp_path / "campaign_manifest.json").write_text(json.dumps({
            "schema_version": 99, "shards": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_manifest(tmp_path)


class TestCommittedShards:
    def _committed(self, plan, out_dir, texts):
        """Write shard files + a done manifest; return the statuses."""
        statuses = {}
        for shard, text in zip(plan.shards, texts):
            atomic_write(out_dir / shard.filename, text)
            statuses[shard.index] = {"status": "done",
                                     "result_hash": result_hash(text)}
        return manifest_dict(plan, statuses)

    def test_all_verified(self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        manifest = self._committed(plan, tmp_path, ["a\n", "b\n", "c\n"])
        done = committed_shards(tmp_path, plan, manifest, "verify")
        assert sorted(done) == [0, 1, 2]
        assert done[0]["result_hash"] == result_hash("a\n")

    def test_none_manifest_is_empty(self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        assert committed_shards(tmp_path, plan, None, "verify") == {}

    def test_missing_file_not_committed(self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        manifest = self._committed(plan, tmp_path, ["a\n", "b\n", "c\n"])
        (tmp_path / plan.shards[1].filename).unlink()
        done = committed_shards(tmp_path, plan, manifest, "verify")
        assert sorted(done) == [0, 2]

    def test_corrupted_file_fails_verify_but_passes_trust(
            self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        manifest = self._committed(plan, tmp_path, ["a\n", "b\n", "c\n"])
        (tmp_path / plan.shards[1].filename).write_text("tampered\n")
        verify = committed_shards(tmp_path, plan, manifest, "verify")
        assert sorted(verify) == [0, 2]
        trust = committed_shards(tmp_path, plan, manifest, "trust")
        # trust accepts manifest status + file presence; the recomputed
        # hash is still recorded truthfully.
        assert sorted(trust) == [0, 1, 2]
        assert trust[1]["result_hash"] == result_hash("tampered\n")

    def test_changed_spec_never_reuses_results(self, tiny_campaign,
                                               tmp_path):
        plan = plan_campaign(tiny_campaign)
        manifest = self._committed(plan, tmp_path, ["a\n", "b\n", "c\n"])
        for row in manifest["shards"]:
            row["spec_hash"] = "stale"
        assert committed_shards(tmp_path, plan, manifest,
                                "verify") == {}

    def test_pending_rows_not_committed(self, tiny_campaign, tmp_path):
        plan = plan_campaign(tiny_campaign)
        manifest = manifest_dict(plan)
        assert committed_shards(tmp_path, plan, manifest,
                                "verify") == {}

"""Contract of tools/validate_trace.py: the trace lint CI leans on.

Drives :func:`validate_events` directly with hand-built event streams
(every rule, both passing and failing sides) and exercises the file
front door over both export formats.
"""

import importlib.util
import pathlib

from repro.obs import RecordingTracer, write_trace

TOOL = (pathlib.Path(__file__).resolve().parents[1]
        / "tools" / "validate_trace.py")

spec = importlib.util.spec_from_file_location("validate_trace", TOOL)
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def events(*emissions):
    tracer = RecordingTracer()
    for kind, cycle, kwargs in emissions:
        tracer.emit(kind, cycle, **kwargs)
    return tracer.events


def launch(cycle, device, members, **extra):
    return ("launch", cycle, dict(device=device, members=members,
                                  cycles=100, **extra))


def finish(cycle, device, members):
    return ("group_finish", cycle, dict(device=device, members=members))


class TestValidEventStreams:
    def test_minimal_serial_timeline(self):
        stream = events(
            ("arrival", 0, dict(app="NN")),
            ("placement", 0, dict(app="NN", device=0)),
            launch(0, 0, ["NN"]),
            finish(100, 0, ["NN"]),
        )
        assert lint.validate_events(stream) == []

    def test_fault_closes_inflight_group(self):
        stream = events(
            launch(0, 1, ["BFS2", "NN"]),
            ("fault", 50, dict(device=1, inflight=["BFS2", "NN"])),
            ("recover", 500, dict(device=1)),
        )
        assert lint.validate_events(stream) == []

    def test_fault_on_idle_device_is_legal(self):
        stream = events(
            ("fault", 10, dict(device=0)),
            ("recover", 20, dict(device=0)),
        )
        assert lint.validate_events(stream) == []

    def test_speculation_kinds_exempt_from_monotonicity(self):
        # predict/spec_hit record when work was *performed*; under
        # run-ahead they legitimately interleave with later-committed
        # timeline events at earlier cycles.
        stream = events(
            ("predict", 900, dict(device=0, submitted=2)),
            launch(100, 0, ["NN"]),
            ("spec_hit", 950, dict(device=0, members=["NN"])),
            finish(200, 0, ["NN"]),
        )
        assert lint.validate_events(stream) == []

    def test_window_open_rollback_commit(self):
        stream = events(
            ("window_open", 100, dict(horizon=500, devices=[0, 1])),
            launch(120, 0, ["NN"]),
            finish(220, 0, ["NN"]),
            ("window_rollback", 220, dict(device=1, barrier=600,
                                          discarded=2)),
            ("window_commit", 220, dict(committed=2)),
        )
        assert lint.validate_events(stream) == []


class TestInvalidEventStreams:
    def test_backwards_device_timeline(self):
        stream = events(
            launch(500, 0, ["NN"]),
            finish(400, 0, ["NN"]),
        )
        errors = lint.validate_events(stream)
        assert any("went backwards" in e for e in errors)

    def test_double_launch_without_retire(self):
        stream = events(
            launch(0, 0, ["NN"]),
            launch(10, 0, ["BFS2"]),
            finish(110, 0, ["BFS2"]),
        )
        errors = lint.validate_events(stream)
        assert any("still in flight" in e for e in errors)

    def test_finish_without_launch(self):
        errors = lint.validate_events(events(finish(10, 0, ["NN"])))
        assert any("no launch in flight" in e for e in errors)

    def test_finish_members_mismatch(self):
        stream = events(
            launch(0, 0, ["NN", "BFS2"]),
            finish(100, 0, ["NN"]),
        )
        errors = lint.validate_events(stream)
        assert any("retired members" in e for e in errors)

    def test_dangling_inflight_at_eof(self):
        errors = lint.validate_events(events(launch(0, 2, ["NN"])))
        assert any("end of trace" in e and "in flight" in e
                   for e in errors)

    def test_unbalanced_window_open(self):
        errors = lint.validate_events(
            events(("window_open", 0, dict(horizon=100))))
        assert any("never committed" in e for e in errors)

    def test_commit_without_open(self):
        errors = lint.validate_events(
            events(("window_commit", 0, dict(committed=0))))
        assert any("without a matching window_open" in e for e in errors)

    def test_rollback_outside_window(self):
        errors = lint.validate_events(
            events(("window_rollback", 0, dict(device=0, discarded=1))))
        assert any("outside an open window" in e for e in errors)

    def test_nested_windows_rejected(self):
        stream = events(
            ("window_open", 0, dict()),
            ("window_open", 10, dict()),
            ("window_commit", 20, dict()),
        )
        errors = lint.validate_events(stream)
        assert any("never nest" in e for e in errors)


class TestFileFrontDoor:
    def _events(self):
        return events(launch(0, 0, ["NN"]), finish(100, 0, ["NN"]))

    def test_validates_both_formats(self, tmp_path, capsys):
        paths = [write_trace(self._events(),
                             str(tmp_path / f"t.{fmt}"), fmt)
                 for fmt in ("jsonl", "chrome")]
        assert lint.main(paths) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = write_trace(events(finish(5, 0, ["NN"])),
                           str(tmp_path / "bad.jsonl"), "jsonl")
        assert lint.main([path]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_unreadable_file_exits_one(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert lint.main([str(missing)]) == 1

    def test_empty_trace_rejected(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert lint.main([str(path)]) == 1
        assert "no events" in capsys.readouterr().out

"""Tests for the command-line interface."""

import json

import pytest

from repro.api import REGISTRY
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_profile_benchmark_selection(self):
        args = build_parser().parse_args(["profile", "BLK", "HS"])
        assert args.benchmarks == ["BLK", "HS"]

    def test_run_queue_defaults(self):
        args = build_parser().parse_args(["run-queue"])
        assert args.queue == "paper"
        assert args.nc == 2
        assert "ilp" in args.policies

    def test_run_queue_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-queue", "--policies", "magic"])

    def test_run_queue_rejects_bad_nc(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-queue", "--nc", "4"])

    def test_scalability_sms(self):
        args = build_parser().parse_args(
            ["scalability", "HS", "--sms", "10", "20"])
        assert args.sms == [10, 20]

    def test_policy_factories_cover_all_policies(self):
        names = {REGISTRY.create("policies", k, 2).name
                 for k in REGISTRY.names("policies")}
        assert names == {"Serial", "Even", "FCFS", "Profile-based", "ILP",
                         "ILP-SMRA"}

    def test_run_queue_accepts_all_and_workers(self):
        args = build_parser().parse_args(
            ["run-queue", "--policies", "all", "--workers", "4"])
        assert args.policies == ["all"]
        assert args.workers == 4

    def test_policy_keys_expand_all(self):
        from repro.cli import _policy_keys
        assert _policy_keys(["all"]) == REGISTRY.names("policies")
        assert _policy_keys(["serial", "serial"]) == ["serial"]
        assert _policy_keys(["ilp", "all"])[0] == "ilp"

    def test_run_stream_defaults(self):
        args = build_parser().parse_args(["run-stream"])
        assert args.apps == 50
        assert args.arrival == "poisson"
        assert args.policies == ["fcfs", "backfill", "ilp"]
        assert args.nc == 2
        assert args.workers == 1

    def test_run_stream_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-stream", "--policies", "magic"])

    def test_run_stream_bursty_options(self):
        args = build_parser().parse_args(
            ["run-stream", "--arrival", "bursty", "--burst-size", "4",
             "--burst-gap", "10000", "--nc", "3"])
        assert args.arrival == "bursty"
        assert args.burst_size == 4
        assert args.nc == 3

    def test_run_stream_threads_seed(self):
        args = build_parser().parse_args(["run-stream", "--seed", "7"])
        assert args.seed == 7

    @pytest.mark.parametrize("argv", [
        ["run-stream", "--mean-gap", "-5"],
        ["run-stream", "--mean-gap", "0"],
        ["run-stream", "--mean-gap", "nan"],
        ["run-stream", "--burst-gap", "-1"],
        ["run-stream", "--burst-size", "0"],
        ["run-stream", "--apps", "0"],
        ["run-stream", "--scale", "-0.5"],
        ["run-stream", "--synthetic-fraction", "1.5"],
        ["run-fleet", "--synthetic-fraction", "-0.1"],
        ["run-stream", "--seed", "-1"],
        ["run-stream", "--workers", "0"],
        ["run-stream", "--workers", "x"],
        ["run-queue", "--workers", "-2"],
        ["run-queue", "--seed", "1.5"],
        ["interference", "--samples", "0"],
    ])
    def test_invalid_rates_and_counts_rejected(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert argv[1] in capsys.readouterr().err

    def test_run_fleet_defaults(self):
        args = build_parser().parse_args(["run-fleet"])
        assert args.devices == 4
        assert args.apps == 200
        assert args.arrival == "poisson"
        assert args.placement == ["round-robin", "least-loaded",
                                  "interference"]
        assert args.policy == "fcfs"
        assert args.workers == 1

    def test_run_fleet_selections(self):
        args = build_parser().parse_args(
            ["run-fleet", "--devices", "8", "--placement", "interference",
             "--policy", "backfill", "--workers", "4"])
        assert args.devices == 8
        assert args.placement == ["interference"]
        assert args.policy == "backfill"
        assert args.workers == 4

    @pytest.mark.parametrize("argv", [
        ["run-fleet", "--placement", "magic"],
        ["run-fleet", "--devices", "0"],
        ["run-fleet", "--policy", "magic"],
        ["run-fleet", "--workers", "0"],
        ["run-fleet", "--device-configs", "magic"],
    ])
    def test_run_fleet_rejects_bad_options(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_run_fleet_device_configs_parse(self):
        args = build_parser().parse_args(
            ["run-fleet", "--devices", "2",
             "--device-configs", "gtx480", "gtx480-half"])
        assert args.device_configs == ["gtx480", "gtx480-half"]

    def test_run_fleet_device_configs_length_mismatch(self):
        from repro.cli import _fleet_devices
        args = build_parser().parse_args(
            ["run-fleet", "--devices", "3",
             "--device-configs", "gtx480", "gtx480-half"])
        with pytest.raises(SystemExit, match="--device-configs"):
            _fleet_devices(args)

    def test_run_fleet_single_config_broadcasts(self):
        from repro.cli import _fleet_devices
        args = build_parser().parse_args(
            ["run-fleet", "--devices", "3",
             "--device-configs", "small-test"])
        spec = _fleet_devices(args)
        assert spec.count == 3
        assert spec.config == "small-test"
        assert spec.per_device is None


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BLK" in out and "GUPS" in out

    def test_profile_single_benchmark(self, capsys):
        assert main(["profile", "LUD"]) == 0
        out = capsys.readouterr().out
        assert "LUD" in out and "IPC" in out

    def test_classify_matches_paper(self, capsys):
        assert main(["classify", "LUD", "NN"]) == 0
        out = capsys.readouterr().out
        assert "class" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "NOPE"])

    def test_scalability_small_sweep(self, capsys):
        assert main(["scalability", "LUD", "--sms", "10", "20"]) == 0
        out = capsys.readouterr().out
        assert "10 SMs" in out and "20 SMs" in out

    def test_run_stream_small_batch(self, capsys):
        assert main(["run-stream", "--apps", "3", "--scale", "0.1",
                     "--synthetic-fraction", "0", "--policies", "fcfs",
                     "--arrival", "batch"]) == 0
        out = capsys.readouterr().out
        assert "ANTT" in out and "FCFS" in out

    def test_run_stream_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("# tiny trace\n0 LUD\n100 LUD\n")
        assert main(["run-stream", "--trace", str(trace), "--scale", "0.1",
                     "--policies", "fcfs"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out

    def test_run_stream_empty_trace_rejected(self, tmp_path):
        trace = tmp_path / "empty.txt"
        trace.write_text("# nothing here\n\n")
        with pytest.raises(SystemExit, match="empty"):
            main(["run-stream", "--trace", str(trace)])

    def test_run_stream_seed_is_reproducible(self, capsys):
        argv = ["run-stream", "--apps", "3", "--scale", "0.1",
                "--synthetic-fraction", "0", "--policies", "fcfs",
                "--seed", "11"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert main(argv[:-1] + ["12"]) == 0
        assert capsys.readouterr().out != first

    def test_list_kind_backed_by_registry(self, capsys):
        assert main(["list", "--kind", "placements"]) == 0
        out = capsys.readouterr().out
        for name in ("round-robin", "least-loaded", "interference"):
            assert name in out

    def test_list_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "--kind", "sandwiches"])

    def _tiny_stream_scenario(self):
        return {
            "schema_version": 1,
            "kind": "stream",
            "name": "tiny",
            "workload": {"source": "stream", "apps": 3,
                         "synthetic_fraction": 0.0, "scale": 0.1,
                         "seed": 11, "arrival": "batch"},
            "policy": {"name": "fcfs", "nc": 2},
        }

    def test_run_scenario_file_writes_results(self, capsys, tmp_path):
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(self._tiny_stream_scenario()))
        out = tmp_path / "results.json"
        assert main(["run", str(scenario), "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "antt" in printed and "FCFS" in printed
        data = json.loads(out.read_text())
        assert data["kind"] == "stream"
        assert data["provenance"]["engine_version"] >= 1
        assert len(data["provenance"]["spec_hash"]) == 64

    def test_run_rejects_malformed_scenario(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "stream", "polcy": {}}))
        with pytest.raises(SystemExit, match="polcy"):
            main(["run", str(bad)])

    def test_sweep_one_point_matches_run(self, tmp_path):
        scenario = tmp_path / "s.json"
        base = self._tiny_stream_scenario()
        scenario.write_text(json.dumps(base))
        out = tmp_path / "results.json"
        assert main(["run", str(scenario), "--out", str(out)]) == 0
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps(
            {"base": base, "grid": {"workload.seed": [11]}}))
        out_dir = tmp_path / "points"
        assert main(["sweep", str(sweep), "--out-dir", str(out_dir)]) == 0
        points = sorted(out_dir.glob("tiny_*.json"))
        assert len(points) == 1
        assert points[0].read_bytes() == out.read_bytes()
        manifest = json.loads((out_dir / "sweep_manifest.json").read_text())
        assert manifest["points"][0]["overrides"] == {"workload.seed": 11}

    def test_run_fleet_small_batch(self, capsys):
        assert main(["run-fleet", "--devices", "2", "--apps", "4",
                     "--scale", "0.1", "--synthetic-fraction", "0",
                     "--arrival", "batch", "--policy", "fcfs",
                     "--placement", "round-robin", "least-loaded",
                     "-v"]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out and "least-loaded" in out
        assert "ANTT" in out and "imbalance" in out
        assert "util/device" in out
        assert "device 0" in out and "device 1" in out

    def test_run_fleet_heterogeneous_batch(self, capsys):
        assert main(["run-fleet", "--devices", "2", "--apps", "4",
                     "--device-configs", "small-test", "small-test-half",
                     "--scale", "0.1", "--synthetic-fraction", "0",
                     "--arrival", "batch", "--policy", "fcfs",
                     "--placement", "least-loaded", "-v"]) == 0
        out = capsys.readouterr().out
        # Verbose per-device lines are labeled with each device's config.
        assert "[small-test]" in out and "[small-test-half]" in out


class TestCampaignCommand:
    def _tiny_campaign(self):
        return {
            "schema_version": 1,
            "name": "tiny-campaign",
            "base": {
                "schema_version": 1,
                "kind": "stream",
                "name": "tiny",
                "workload": {"source": "stream", "apps": 3,
                             "synthetic_fraction": 0.0, "scale": 0.1,
                             "seed": 11, "arrival": "batch"},
                "policy": {"name": "fcfs", "nc": 2},
            },
            "grid": {"workload.seed": [1, 2, 3]},
            "shard": {"strategy": "by-point", "max_shard_size": 1},
            "resume": "verify",
        }

    def test_campaign_runs_and_merges(self, capsys, tmp_path):
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(self._tiny_campaign()))
        out_dir = tmp_path / "out"
        assert main(["campaign", str(spec), "--out-dir",
                     str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 shard(s) run, 0 skipped, 3 total" in out
        result = json.loads(
            (out_dir / "campaign_result.json").read_text())
        assert result["kind"] == "campaign"
        assert result["metrics"]["apps"] == 9
        manifest = json.loads(
            (out_dir / "campaign_manifest.json").read_text())
        assert all(r["status"] == "done" for r in manifest["shards"])

    def test_interrupted_campaign_exits_3_then_resumes(self, capsys,
                                                       tmp_path):
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(self._tiny_campaign()))
        out_dir = tmp_path / "out"
        # --max-shards is the deterministic kill the CI smoke uses.
        assert main(["campaign", str(spec), "--out-dir", str(out_dir),
                     "--max-shards", "1"]) == 3
        assert "rerun with --resume" in capsys.readouterr().out
        assert not (out_dir / "campaign_result.json").exists()
        assert main(["campaign", str(spec), "--out-dir", str(out_dir),
                     "--resume", "--shard-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 shard(s) run, 1 skipped, 3 total" in out
        assert (out_dir / "campaign_result.json").exists()

    def test_campaign_rejects_malformed_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        data = self._tiny_campaign()
        data["gird"] = {}
        bad.write_text(json.dumps(data))
        with pytest.raises(SystemExit, match="gird"):
            main(["campaign", str(bad)])

    def test_sweep_manifest_is_campaign_resumable(self, tmp_path):
        # The upgraded sweep manifest carries the campaign row fields.
        campaign = self._tiny_campaign()
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps({"base": campaign["base"],
                                     "grid": campaign["grid"]}))
        out_dir = tmp_path / "points"
        assert main(["sweep", str(sweep), "--out-dir",
                     str(out_dir)]) == 0
        manifest = json.loads(
            (out_dir / "sweep_manifest.json").read_text())
        assert manifest["schema_version"] == 1
        assert manifest["kind"] == "sweep"
        for row in manifest["points"]:
            assert row["status"] == "done"
            assert len(row["result_hash"]) == 64
            assert len(row["spec_hash"]) == 64
        # And a campaign over the same base x grid resumes from it.
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(campaign))
        assert main(["campaign", str(spec), "--out-dir", str(out_dir),
                     "--resume"]) == 0
        result = json.loads(
            (out_dir / "campaign_result.json").read_text())
        assert result["metrics"]["apps"] == 9

"""Exit-code contract of tools/check_bench_regression.py.

The CI perf-smoke job tolerates exit 2 (cannot compare) and fails on
exit 1 (real regression), mirroring the engine-version guard, so the
distinction between the two is load-bearing.
"""

import importlib.util
import json
import pathlib

import pytest

TOOL = (pathlib.Path(__file__).resolve().parents[1]
        / "tools" / "check_bench_regression.py")

spec = importlib.util.spec_from_file_location("check_bench_regression",
                                              TOOL)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def bench(events):
    return {"bench": "gpusim", "schema_version": 1,
            "workloads": {name: {"events_per_sec": eps}
                          for name, eps in events.items()}}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def run(tmp_path, current, baseline, tolerance=0.25):
    return gate.main(["check_bench_regression.py",
                      "--current", write(tmp_path, "cur.json", current),
                      "--baseline", write(tmp_path, "base.json", baseline),
                      "--tolerance", str(tolerance)])


class TestVerdicts:
    def test_identical_benches_pass(self, tmp_path):
        payload = bench({"solo_run": 100_000, "two_app": 50_000})
        assert run(tmp_path, payload, payload) == 0

    def test_small_regression_within_tolerance_passes(self, tmp_path):
        base = bench({"solo_run": 100_000, "two_app": 50_000})
        cur = bench({"solo_run": 90_000, "two_app": 45_000})  # -10%
        assert run(tmp_path, cur, base) == 0

    def test_large_regression_fails(self, tmp_path):
        base = bench({"solo_run": 100_000, "two_app": 50_000})
        cur = bench({"solo_run": 60_000, "two_app": 30_000})  # -40%
        assert run(tmp_path, cur, base) == 1

    def test_one_noisy_workload_is_damped_by_the_geomean(self, tmp_path):
        base = bench({"a": 100_000, "b": 100_000, "c": 100_000})
        cur = bench({"a": 60_000, "b": 100_000, "c": 100_000})
        # One 0.6x outlier: geomean ~0.84x stays above the 0.75 floor.
        assert run(tmp_path, cur, base) == 0

    def test_speedups_always_pass(self, tmp_path):
        base = bench({"solo_run": 100_000})
        cur = bench({"solo_run": 250_000})
        assert run(tmp_path, cur, base) == 0


class TestCannotCompare:
    def test_missing_baseline_file_is_exit_2(self, tmp_path):
        cur = write(tmp_path, "cur.json", bench({"solo_run": 1000}))
        assert gate.main(["x", "--current", cur,
                          "--baseline",
                          str(tmp_path / "nope.json")]) == 2

    def test_unresolvable_git_ref_is_exit_2(self, tmp_path):
        cur = write(tmp_path, "cur.json", bench({"solo_run": 1000}))
        assert gate.main(["x", "--current", cur,
                          "--baseline", "no-such-ref-xyz"]) == 2

    def test_missing_current_is_exit_2(self, tmp_path):
        base = write(tmp_path, "base.json", bench({"solo_run": 1000}))
        assert gate.main(["x", "--current", str(tmp_path / "nope.json"),
                          "--baseline", base]) == 2

    def test_no_shared_workloads_is_exit_2(self, tmp_path):
        assert run(tmp_path, bench({"a": 1000}), bench({"b": 1000})) == 2

    def test_corrupt_current_is_exit_2(self, tmp_path):
        broken = tmp_path / "cur.json"
        broken.write_text("{not json")
        base = write(tmp_path, "base.json", bench({"a": 1000}))
        assert gate.main(["x", "--current", str(broken),
                          "--baseline", base]) == 2


class TestAgainstCommittedBaseline:
    def test_head_baseline_resolves_in_this_repo(self):
        # `git show HEAD:BENCH_gpusim.json` must parse and expose
        # events/s — the default CI invocation depends on it.
        baseline = gate._load_baseline("HEAD")
        assert baseline is not None
        assert gate._events_per_sec(baseline)

    def test_tolerance_validation(self):
        with pytest.raises(SystemExit):
            gate.main(["x", "--tolerance", "0"])
        with pytest.raises(SystemExit):
            gate.main(["x", "--tolerance", "1.5"])

"""Tests for the set-associative cache (LRU and BIP insertion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import SetAssocCache


class TestBasics:
    def test_miss_then_hit(self):
        c = SetAssocCache(4, 2)
        assert not c.access(0)
        assert c.access(0)
        assert c.hits == 1 and c.misses == 1

    def test_probe_does_not_allocate(self):
        c = SetAssocCache(4, 2)
        assert not c.probe(0)
        c.access(0)
        assert c.probe(0)
        assert c.hits == 0 or c.hits == 0  # probe never counts

    def test_different_sets_do_not_conflict(self):
        c = SetAssocCache(4, 1)
        c.access(0)
        c.access(1)  # different set (line % num_sets)
        assert c.probe(0) and c.probe(1)

    def test_lru_eviction_order(self):
        c = SetAssocCache(1, 2)
        c.access(10)
        c.access(20)
        c.access(10)      # refresh 10 → 20 is now LRU
        c.access(30)      # evicts 20
        assert c.probe(10) and c.probe(30)
        assert not c.probe(20)

    def test_eviction_count(self):
        c = SetAssocCache(1, 2)
        for line in (0, 1, 2, 3):
            c.access(line)
        assert c.evictions == 2

    def test_invalidate_all(self):
        c = SetAssocCache(4, 2)
        c.access(0)
        c.invalidate_all()
        assert not c.probe(0)
        assert c.occupancy == 0

    def test_hit_rate(self):
        c = SetAssocCache(4, 2)
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert SetAssocCache(4, 2).hit_rate == 0.0

    def test_reset_stats_keeps_contents(self):
        c = SetAssocCache(4, 2)
        c.access(0)
        c.reset_stats()
        assert c.misses == 0
        assert c.probe(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 2)
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)
        with pytest.raises(ValueError):
            SetAssocCache(4, 2, insertion="rrip")


class TestBipInsertion:
    def test_streaming_does_not_evict_reused_set(self):
        """The thrash-resistance property: an established (re-referenced)
        working set survives a pass of never-reused streaming lines."""
        c = SetAssocCache(1, 8, insertion="bip", bip_epsilon=10**9)
        hot = list(range(0, 4))
        for line in hot:          # establish
            c.access(line)
        for line in hot:          # promote to MRU
            assert c.access(line)
        for stream in range(100, 160):  # a long streaming sweep
            c.access(stream)
        for line in hot:
            assert c.probe(line), "hot line was washed out under BIP"

    def test_lru_insertion_washes_reused_set(self):
        """Contrast: classic LRU insertion lets the stream evict the set."""
        c = SetAssocCache(1, 8, insertion="lru")
        hot = list(range(0, 4))
        for line in hot:
            c.access(line)
            c.access(line)
        for stream in range(100, 160):
            c.access(stream)
        assert not any(c.probe(line) for line in hot)

    def test_bip_line_promoted_on_reuse(self):
        c = SetAssocCache(1, 4, insertion="bip", bip_epsilon=10**9)
        c.access(1)
        c.access(1)          # promoted to MRU
        for s in (10, 20, 30):
            c.access(s)      # fills the set with LRU inserts
        assert c.probe(1)

    def test_bip_epsilon_occasionally_inserts_mru(self):
        # epsilon=1 → every insert goes to MRU (degenerates to LRU policy).
        c = SetAssocCache(1, 2, insertion="bip", bip_epsilon=1)
        c.access(10)
        c.access(20)
        c.access(30)
        assert c.probe(30) and c.probe(20)
        assert not c.probe(10)


class TestCacheProperties:
    @given(lines=st.lists(st.integers(0, 1000), min_size=1, max_size=300),
           assoc=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines, assoc):
        c = SetAssocCache(4, assoc)
        for line in lines:
            c.access(line)
        assert c.occupancy <= 4 * assoc
        assert c.hits + c.misses == len(lines)

    @given(lines=st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru_model(self, lines):
        """Differential test against a straightforward reference LRU."""
        num_sets, assoc = 2, 3
        c = SetAssocCache(num_sets, assoc)
        reference = [[] for _ in range(num_sets)]  # most recent last
        for line in lines:
            ref_set = reference[line % num_sets]
            expected_hit = line in ref_set
            if expected_hit:
                ref_set.remove(line)
            elif len(ref_set) >= assoc:
                ref_set.pop(0)
            ref_set.append(line)
            assert c.access(line) == expected_hit

    @given(lines=st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_access_after_access_always_hits(self, lines):
        c = SetAssocCache(8, 4)
        for line in lines:
            c.access(line)
            assert c.probe(line)

"""Tests for kernel specs, program building, and address streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (Application, AddressStream, BlockContext,
                          KernelSpec, WarpContext)

from ..conftest import make_tiny_spec


class TestKernelSpecValidation:
    def test_valid_spec(self, tiny_spec):
        assert tiny_spec.total_warps == 16

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            make_tiny_spec(pattern="zigzag")

    def test_bad_mem_fraction(self):
        with pytest.raises(ValueError):
            make_tiny_spec(mem_fraction=1.5)

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            make_tiny_spec(blocks=0)
        with pytest.raises(ValueError):
            make_tiny_spec(warps_per_block=0)

    def test_bad_tx(self):
        with pytest.raises(ValueError):
            make_tiny_spec(tx_per_access=0)
        with pytest.raises(ValueError):
            make_tiny_spec(tx_per_access=64)

    def test_bad_hot_fraction(self):
        with pytest.raises(ValueError):
            make_tiny_spec(hot_fraction=-0.1)

    def test_bad_launches(self):
        with pytest.raises(ValueError):
            make_tiny_spec(kernel_launches=0)

    def test_scaled(self, tiny_spec):
        half = tiny_spec.scaled(0.5)
        assert half.instr_per_warp == tiny_spec.instr_per_warp // 2
        assert half.blocks == tiny_spec.blocks

    def test_totals_with_launches(self):
        spec = make_tiny_spec(kernel_launches=3)
        assert spec.total_blocks == spec.blocks * 3
        assert spec.total_warp_instructions == (
            spec.total_warps * spec.instr_per_warp * 3)


class TestProgramBuilding:
    def test_instruction_conservation(self):
        spec = make_tiny_spec(instr_per_warp=100, mem_fraction=0.2)
        program = spec.build_program()
        total = sum(alu + (1 if tx else 0) for alu, tx in program)
        assert total == 100

    def test_mem_instruction_count(self):
        spec = make_tiny_spec(instr_per_warp=100, mem_fraction=0.2)
        program = spec.build_program()
        assert sum(1 for _alu, tx in program if tx) == 20

    def test_pure_compute_program(self):
        spec = make_tiny_spec(mem_fraction=0.0, instr_per_warp=50)
        program = spec.build_program()
        assert program == [(50, 0)]

    def test_pure_memory_program(self):
        spec = make_tiny_spec(mem_fraction=1.0, instr_per_warp=10,
                              tx_per_access=4)
        program = spec.build_program()
        assert len(program) == 10
        assert all(alu == 0 and tx == 4 for alu, tx in program)

    def test_alu_spread_even(self):
        spec = make_tiny_spec(instr_per_warp=10, mem_fraction=0.3)
        program = spec.build_program()
        alus = [alu for alu, _ in program]
        assert max(alus) - min(alus) <= 1

    @given(ipw=st.integers(1, 500), frac=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_program_conserves_any_shape(self, ipw, frac):
        spec = make_tiny_spec(instr_per_warp=ipw, mem_fraction=frac)
        program = spec.build_program()
        total = sum(alu + (1 if tx else 0) for alu, tx in program)
        assert total == ipw
        assert all(alu >= 0 for alu, _tx in program)


class TestAddressStream:
    def _stream(self, spec, warp_index=0, base=1 << 30):
        return AddressStream(spec, base, warp_index, line_size=128,
                             lines_per_row=16, row_stride=48)

    def test_deterministic(self):
        spec = make_tiny_spec(pattern="random", working_set_kb=512)
        a = self._stream(spec).next_lines(20)
        b = self._stream(spec).next_lines(20)
        assert a == b

    def test_warp_seeds_differ(self):
        spec = make_tiny_spec(pattern="random", working_set_kb=512)
        a = self._stream(spec, warp_index=0).next_lines(20)
        b = self._stream(spec, warp_index=1).next_lines(20)
        assert a != b

    def test_stream_pattern_sequential(self):
        spec = make_tiny_spec(pattern="stream", working_set_kb=512,
                              hot_fraction=0.0)
        lines = self._stream(spec).next_lines(5)
        assert lines == [lines[0] + i for i in range(5)]

    def test_strided_pattern(self):
        spec = make_tiny_spec(pattern="strided", stride_lines=48,
                              working_set_kb=2048, hot_fraction=0.0)
        lines = self._stream(spec).next_lines(4)
        assert lines == [lines[0] + 48 * i for i in range(4)]

    def test_addresses_within_working_set(self):
        spec = make_tiny_spec(pattern="random", working_set_kb=64,
                              hot_fraction=0.0)
        base = 1 << 30
        ws_lines = 64 * 1024 // 128
        for line in self._stream(spec, base=base).next_lines(200):
            assert base <= line < base + ws_lines

    def test_hot_region_beyond_working_set(self):
        spec = make_tiny_spec(pattern="stream", working_set_kb=64,
                              hot_fraction=1.0, hot_set_kb=32)
        base = 1 << 30
        ws_lines = 64 * 1024 // 128
        hot_lines = 32 * 1024 // 128
        for line in self._stream(spec, base=base).next_lines(100):
            assert base + ws_lines <= line < base + ws_lines + hot_lines

    def test_row_local_stays_in_row_with_full_locality(self):
        spec = make_tiny_spec(pattern="row_local", row_locality=1.0,
                              working_set_kb=16384, hot_fraction=0.0)
        stream = self._stream(spec, base=0)
        lines = stream.next_lines(30)
        # All lines congruent mod the row stride → same partition/bank.
        assert len({line % 48 for line in lines}) == 1

    def test_row_local_zero_locality_is_random(self):
        spec = make_tiny_spec(pattern="row_local", row_locality=0.0,
                              working_set_kb=16384, hot_fraction=0.0)
        lines = self._stream(spec).next_lines(100)
        assert len(set(line % 48 for line in lines)) > 10

    def test_stream_wraps_working_set(self):
        spec = make_tiny_spec(pattern="stream", working_set_kb=1,
                              hot_fraction=0.0)  # 8 lines
        lines = self._stream(spec).next_lines(20)
        assert max(lines) - min(lines) < 8


class TestWarpAndBlockContexts:
    def test_warp_advance_to_done(self, tiny_spec):
        program = [(5, 0), (3, 2)]
        block = BlockContext(0, 0, 1)
        warp = WarpContext(0, block, program, None, age=0)
        assert not warp.done
        warp.advance()
        assert not warp.done
        warp.advance()
        assert warp.done

    def test_empty_program_is_done(self):
        block = BlockContext(0, 0, 1)
        warp = WarpContext(0, block, [], None, age=0)
        assert warp.done

    def test_block_completion_counting(self):
        block = BlockContext(0, 0, 3)
        assert not block.warp_finished()
        assert not block.warp_finished()
        assert block.warp_finished()


class TestApplication:
    def test_base_line_requires_launch(self, tiny_spec):
        app = Application("x", tiny_spec)
        with pytest.raises(RuntimeError):
            _ = app.base_line

    def test_base_lines_disjoint(self, tiny_spec):
        a = Application("a", tiny_spec, app_id=0)
        b = Application("b", tiny_spec, app_id=1)
        assert a.base_line != b.base_line

    def test_launch_barrier_bookkeeping(self):
        spec = make_tiny_spec(blocks=4, kernel_launches=2)
        app = Application("x", spec, app_id=0)
        app.blocks_dispatched = 4      # launch 0 fully dispatched
        app.blocks_completed = 0
        assert not app.launch_barrier_open  # launch 1 gated
        assert not app.all_dispatched
        assert not app.dispatchable
        app.blocks_completed = 4       # launch 0 complete
        assert app.launch_barrier_open
        assert app.dispatchable
        app.blocks_dispatched = 8
        assert app.all_dispatched
        app.blocks_completed = 8
        assert app.finished

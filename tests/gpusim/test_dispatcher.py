"""Tests for the work distributor (block dispatch, ownership, launches)."""

import pytest

from repro.gpusim import Application, GPU, small_test_config

from ..conftest import make_tiny_spec


def launched_gpu(cfg, specs):
    gpu = GPU(cfg)
    gpu.launch([Application(f"a{i}", s) for i, s in enumerate(specs)])
    return gpu


class TestOwnershipQueries:
    def test_sms_of_after_launch(self, small_cfg, tiny_spec):
        gpu = launched_gpu(small_cfg, [tiny_spec, tiny_spec])
        a = gpu.distributor.sms_of(0)
        b = gpu.distributor.sms_of(1)
        assert sorted(a + b) == list(range(small_cfg.num_sms))
        assert abs(len(a) - len(b)) <= 1

    def test_sms_of_counts_draining_toward_target(self, small_cfg,
                                                  tiny_spec):
        gpu = launched_gpu(small_cfg, [tiny_spec, tiny_spec])
        gpu.distributor.dispatch(0)
        # Migrate one busy SM of app 0 to app 1: it counts for app 1.
        victim = next(s for s in gpu.sms if s.owner == 0 and s.blocks)
        gpu.distributor.set_sm_owner(victim.index, 1)
        assert victim.index in gpu.distributor.sms_of(1)
        assert victim.index not in gpu.distributor.sms_of(0)


class TestBlockDispatch:
    def test_dispatch_counts_blocks(self, small_cfg):
        spec = make_tiny_spec(blocks=6)
        gpu = launched_gpu(small_cfg, [spec])
        dispatched = gpu.distributor.dispatch(0)
        assert dispatched == 6
        assert gpu.apps[0].blocks_dispatched == 6

    def test_dispatch_respects_capacity(self, small_cfg):
        huge = make_tiny_spec(blocks=500, warps_per_block=1)
        gpu = launched_gpu(small_cfg, [huge])
        gpu.distributor.dispatch(0)
        resident = sum(len(sm.blocks) for sm in gpu.sms)
        assert resident == small_cfg.num_sms * small_cfg.max_blocks_per_sm
        assert gpu.apps[0].blocks_dispatched == resident

    def test_no_dispatch_to_draining_sm(self, small_cfg):
        spec = make_tiny_spec(blocks=2, kernel_launches=2)
        gpu = launched_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        busy = next(s for s in gpu.sms if s.blocks)
        busy.set_owner(None)  # start draining
        before = len(busy.blocks)
        gpu.distributor.dispatch(0)
        assert len(busy.blocks) == before

    def test_launch_barrier_blocks_next_launch(self, small_cfg):
        spec = make_tiny_spec(blocks=2, kernel_launches=3)
        gpu = launched_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        # Only the first launch's blocks may dispatch before completion.
        assert gpu.apps[0].blocks_dispatched == 2
        assert not gpu.apps[0].dispatchable

    def test_idempotent_when_nothing_pending(self, small_cfg, tiny_spec):
        gpu = launched_gpu(small_cfg, [tiny_spec])
        gpu.distributor.dispatch(0)
        assert gpu.distributor.dispatch(0) == 0

    def test_program_shared_across_blocks(self, small_cfg, tiny_spec):
        """All warps of an application share one program object (the
        segment list is immutable and built once per app)."""
        gpu = launched_gpu(small_cfg, [tiny_spec])
        prog_a = gpu.distributor._program_of(gpu.apps[0])
        prog_b = gpu.distributor._program_of(gpu.apps[0])
        assert prog_a is prog_b


class TestRunToCompletionWithMigration:
    def test_mid_run_migration_preserves_work(self, small_cfg):
        """Migrating SMs mid-run must not lose or duplicate blocks."""
        spec = make_tiny_spec(blocks=8, kernel_launches=2)
        gpu = launched_gpu(small_cfg, [spec, spec])
        from repro.gpusim import Callback

        def migrate_once(g, now):
            if now == 200:
                sms = g.distributor.sms_of(0)
                if len(sms) > 1:
                    g.distributor.set_sm_owner(sms[-1], 1)

        res = gpu.run(callbacks=(Callback(200, migrate_once),))
        for app_id, stats in res.app_stats.items():
            assert stats.blocks_completed == spec.total_blocks

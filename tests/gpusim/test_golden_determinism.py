"""Golden determinism tests: the engine must be bit-identical to seed.

The GOLDEN values below were captured from the *seed* engine (commit
5e7609b, before the hot-path overhaul) by running `simulate()` on fixed
specs and recording `DeviceResult` cycles plus every per-app counter.
Any optimization that changes event ordering, float arithmetic, RNG
consumption, or counter accounting will break at least one case — the
cases deliberately cover every scheduler (GTO/LRR), memory scheduler
(FR-FCFS/FCFS), L2 insertion policy (BIP/LRU), access pattern (stream /
strided / random / row_local / hot-region), multi-launch kernels, and
one/two/three-app co-runs on both the small test device and the full
GTX-480 configuration.

If a future PR *intends* to change simulation results, it must bump
`repro.gpusim.ENGINE_VERSION` (invalidating persistent profile caches)
and re-capture these values — never silently update them.
"""

import pytest

from repro.gpusim import Application, KernelSpec, gtx480, simulate, small_test_config

STAT_FIELDS = ("warp_instructions", "thread_instructions", "alu_instructions",
               "mem_instructions", "mem_transactions", "l1_hits", "l2_hits",
               "dram_accesses", "dram_row_hits", "dram_bytes",
               "l2_to_l1_bytes", "blocks_completed", "start_cycle",
               "finish_cycle")


def _spec(name, **kw):
    return KernelSpec(name, **kw)


CASES = {
    "solo_stream_gto": (
        lambda: small_test_config(),
        [dict(name="s", blocks=8, warps_per_block=2, instr_per_warp=60,
              mem_fraction=0.15, tx_per_access=2, working_set_kb=64,
              pattern="stream", seed=7)]),
    "solo_strided_lrr": (
        lambda: small_test_config(scheduler="lrr"),
        [dict(name="st", blocks=6, warps_per_block=3, instr_per_warp=80,
              mem_fraction=0.2, tx_per_access=3, working_set_kb=256,
              pattern="strided", stride_lines=5, seed=11)]),
    "solo_random_fcfs": (
        lambda: small_test_config(mem_scheduler="fcfs"),
        [dict(name="r", blocks=5, warps_per_block=2, instr_per_warp=50,
              mem_fraction=0.3, tx_per_access=4, working_set_kb=512,
              pattern="random", seed=13)]),
    "solo_rowlocal_hot": (
        lambda: small_test_config(l2_insertion="lru"),
        [dict(name="rl", blocks=6, warps_per_block=2, instr_per_warp=70,
              mem_fraction=0.25, tx_per_access=2, working_set_kb=1024,
              pattern="row_local", row_locality=0.6, hot_fraction=0.3,
              hot_set_kb=32, kernel_launches=2, seed=17)]),
    "pair_mixed": (
        lambda: small_test_config(),
        [dict(name="a", blocks=6, warps_per_block=2, instr_per_warp=60,
              mem_fraction=0.2, tx_per_access=2, working_set_kb=128,
              pattern="stream", seed=19),
         dict(name="b", blocks=6, warps_per_block=2, instr_per_warp=40,
              mem_fraction=0.3, tx_per_access=4, working_set_kb=2048,
              pattern="random", seed=23)]),
    "triple_gtx_scaled": (
        lambda: gtx480(),
        [dict(name="x", blocks=30, warps_per_block=2, instr_per_warp=40,
              mem_fraction=0.1, tx_per_access=2, working_set_kb=4096,
              pattern="stream", hot_fraction=0.4, hot_set_kb=128, seed=29),
         dict(name="y", blocks=24, warps_per_block=2, instr_per_warp=30,
              mem_fraction=0.2, tx_per_access=4, working_set_kb=8192,
              pattern="row_local", row_locality=0.5, seed=31),
         dict(name="z", blocks=20, warps_per_block=2, instr_per_warp=50,
              mem_fraction=0.05, working_set_kb=64, pattern="strided",
              stride_lines=3, seed=37)]),
}

#: Captured from the seed engine — do not edit by hand (see module doc).
GOLDEN = {
    "pair_mixed": {
        "apps": {
            "0": {
                "alu_instructions": 576,
                "blocks_completed": 6,
                "dram_accesses": 288,
                "dram_bytes": 36864,
                "dram_row_hits": 219,
                "finish_cycle": 4389,
                "l1_hits": 0,
                "l2_hits": 0,
                "l2_to_l1_bytes": 0,
                "mem_instructions": 144,
                "mem_transactions": 288,
                "start_cycle": 0,
                "thread_instructions": 23040,
                "warp_instructions": 720
            },
            "1": {
                "alu_instructions": 336,
                "blocks_completed": 6,
                "dram_accesses": 568,
                "dram_bytes": 72704,
                "dram_row_hits": 103,
                "finish_cycle": 4377,
                "l1_hits": 1,
                "l2_hits": 7,
                "l2_to_l1_bytes": 896,
                "mem_instructions": 144,
                "mem_transactions": 576,
                "start_cycle": 0,
                "thread_instructions": 15360,
                "warp_instructions": 480
            }
        },
        "cycles": 4389
    },
    "solo_random_fcfs": {
        "apps": {
            "0": {
                "alu_instructions": 350,
                "blocks_completed": 5,
                "dram_accesses": 573,
                "dram_bytes": 73344,
                "dram_row_hits": 340,
                "finish_cycle": 3718,
                "l1_hits": 2,
                "l2_hits": 25,
                "l2_to_l1_bytes": 3200,
                "mem_instructions": 150,
                "mem_transactions": 600,
                "start_cycle": 0,
                "thread_instructions": 16000,
                "warp_instructions": 500
            }
        },
        "cycles": 3718
    },
    "solo_rowlocal_hot": {
        "apps": {
            "0": {
                "alu_instructions": 1248,
                "blocks_completed": 12,
                "dram_accesses": 747,
                "dram_bytes": 95616,
                "dram_row_hits": 536,
                "finish_cycle": 8064,
                "l1_hits": 53,
                "l2_hits": 64,
                "l2_to_l1_bytes": 8192,
                "mem_instructions": 432,
                "mem_transactions": 864,
                "start_cycle": 0,
                "thread_instructions": 53760,
                "warp_instructions": 1680
            }
        },
        "cycles": 8064
    },
    "solo_stream_gto": {
        "apps": {
            "0": {
                "alu_instructions": 816,
                "blocks_completed": 8,
                "dram_accesses": 288,
                "dram_bytes": 36864,
                "dram_row_hits": 256,
                "finish_cycle": 2107,
                "l1_hits": 0,
                "l2_hits": 0,
                "l2_to_l1_bytes": 0,
                "mem_instructions": 144,
                "mem_transactions": 288,
                "start_cycle": 0,
                "thread_instructions": 30720,
                "warp_instructions": 960
            }
        },
        "cycles": 2107
    },
    "solo_strided_lrr": {
        "apps": {
            "0": {
                "alu_instructions": 1152,
                "blocks_completed": 6,
                "dram_accesses": 864,
                "dram_bytes": 110592,
                "dram_row_hits": 736,
                "finish_cycle": 3650,
                "l1_hits": 0,
                "l2_hits": 0,
                "l2_to_l1_bytes": 0,
                "mem_instructions": 288,
                "mem_transactions": 864,
                "start_cycle": 0,
                "thread_instructions": 46080,
                "warp_instructions": 1440
            }
        },
        "cycles": 3650
    },
    "triple_gtx_scaled": {
        "apps": {
            "0": {
                "alu_instructions": 2160,
                "blocks_completed": 30,
                "dram_accesses": 455,
                "dram_bytes": 58240,
                "dram_row_hits": 105,
                "finish_cycle": 1576,
                "l1_hits": 0,
                "l2_hits": 25,
                "l2_to_l1_bytes": 3200,
                "mem_instructions": 240,
                "mem_transactions": 480,
                "start_cycle": 0,
                "thread_instructions": 76800,
                "warp_instructions": 2400
            },
            "1": {
                "alu_instructions": 1152,
                "blocks_completed": 24,
                "dram_accesses": 1077,
                "dram_bytes": 137856,
                "dram_row_hits": 510,
                "finish_cycle": 2000,
                "l1_hits": 57,
                "l2_hits": 18,
                "l2_to_l1_bytes": 2304,
                "mem_instructions": 288,
                "mem_transactions": 1152,
                "start_cycle": 0,
                "thread_instructions": 46080,
                "warp_instructions": 1440
            },
            "2": {
                "alu_instructions": 1920,
                "blocks_completed": 20,
                "dram_accesses": 80,
                "dram_bytes": 10240,
                "dram_row_hits": 62,
                "finish_cycle": 967,
                "l1_hits": 0,
                "l2_hits": 0,
                "l2_to_l1_bytes": 0,
                "mem_instructions": 80,
                "mem_transactions": 80,
                "start_cycle": 0,
                "thread_instructions": 64000,
                "warp_instructions": 2000
            }
        },
        "cycles": 2000
    }
}


def _engine(backend):
    """Resolve an ``engine-backends`` name without importing at module
    scope (keeps this module importable on trees without the api layer)."""
    from repro.api.engines import engine_class
    return engine_class(backend)


@pytest.mark.parametrize("backend", ["event", "vector"])
@pytest.mark.parametrize("case", sorted(CASES))
def test_bit_identical_to_seed_engine(case, backend):
    make_cfg, spec_dicts = CASES[case]
    specs = [_spec(**d) for d in spec_dicts]
    result = simulate(make_cfg(), [Application(s.name, s) for s in specs],
                      engine=_engine(backend))
    expected = GOLDEN[case]
    assert result.cycles == expected["cycles"]
    for app_id_str, fields in expected["apps"].items():
        stats = result.app_stats[int(app_id_str)]
        for field in STAT_FIELDS:
            assert getattr(stats, field) == fields[field], (
                f"{case}: app {app_id_str} field {field}")


def test_repeat_run_is_deterministic():
    """Two fresh simulations of the same inputs are identical."""
    make_cfg, spec_dicts = CASES["pair_mixed"]
    specs = [_spec(**d) for d in spec_dicts]
    a = simulate(make_cfg(), [Application(s.name, s) for s in specs])
    b = simulate(make_cfg(), [Application(s.name, s) for s in specs])
    assert a.cycles == b.cycles
    for app_id, stats in a.app_stats.items():
        for field in STAT_FIELDS:
            assert getattr(stats, field) == getattr(b.app_stats[app_id], field)


def test_events_processed_counter():
    """The perf-harness event counter counts real engine events."""
    from repro.gpusim import GPU
    make_cfg, spec_dicts = CASES["solo_stream_gto"]
    specs = [_spec(**d) for d in spec_dicts]
    gpu = GPU(make_cfg())
    gpu.launch([Application(s.name, s) for s in specs])
    gpu.run()
    # At least one ALU + one retire event per warp must have fired.
    assert gpu.events_processed >= 2 * specs[0].total_warps

"""Tests for the SM model: residency, scheduling, and owner migration."""

import pytest

from repro.gpusim import Application, GPU, simulate, small_test_config

from ..conftest import make_tiny_spec


def build_gpu(cfg, specs):
    gpu = GPU(cfg)
    gpu.launch([Application(f"a{i}", s) for i, s in enumerate(specs)])
    return gpu


class TestResidency:
    def test_blocks_per_sm_limit(self, small_cfg):
        spec = make_tiny_spec(blocks=100, warps_per_block=1)
        gpu = build_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        for sm in gpu.sms:
            assert len(sm.blocks) <= small_cfg.max_blocks_per_sm

    def test_warps_per_sm_limit(self, small_cfg):
        spec = make_tiny_spec(blocks=100, warps_per_block=5)
        gpu = build_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        for sm in gpu.sms:
            assert sm.resident_warps <= small_cfg.max_warps_per_sm

    def test_spec_block_cap_respected(self, small_cfg):
        spec = make_tiny_spec(blocks=100, warps_per_block=1,
                              max_blocks_per_sm=2)
        gpu = build_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        for sm in gpu.sms:
            assert len(sm.blocks) <= 2

    def test_dispatch_round_robin_balance(self, small_cfg):
        spec = make_tiny_spec(blocks=8, warps_per_block=1)
        gpu = build_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        counts = [len(sm.blocks) for sm in gpu.sms]
        assert max(counts) - min(counts) <= 1

    def test_admit_beyond_capacity_raises(self, small_cfg):
        spec = make_tiny_spec(blocks=1, warps_per_block=1)
        gpu = build_gpu(small_cfg, [spec])
        sm = gpu.sms[0]
        from repro.gpusim import BlockContext, WarpContext
        while sm.can_host(1):
            block = BlockContext(0, 99, 1)
            warp = WarpContext(0, block, [(1, 0)], None, age=0)
            sm.admit_block(block, [warp], 0)
        with pytest.raises(RuntimeError):
            block = BlockContext(0, 100, 1)
            warp = WarpContext(0, block, [(1, 0)], None, age=0)
            sm.admit_block(block, [warp], 0)


class TestOwnerMigration:
    def test_idle_sm_flips_immediately(self, small_cfg):
        gpu = GPU(small_cfg)
        sm = gpu.sms[0]
        sm.set_owner(3)
        assert sm.owner == 3
        assert not sm.draining

    def test_busy_sm_drains(self, small_cfg, tiny_spec):
        gpu = build_gpu(small_cfg, [tiny_spec])
        gpu.distributor.dispatch(0)
        sm = next(s for s in gpu.sms if s.blocks)
        sm.set_owner(7)
        assert sm.draining
        assert sm.owner == 0  # still running the old app's blocks

    def test_same_owner_cancels_drain(self, small_cfg, tiny_spec):
        gpu = build_gpu(small_cfg, [tiny_spec])
        gpu.distributor.dispatch(0)
        sm = next(s for s in gpu.sms if s.blocks)
        sm.set_owner(7)
        sm.set_owner(0)  # back to the current owner: cancel migration
        assert not sm.draining

    def test_drain_completes_after_blocks_finish(self, small_cfg):
        spec = make_tiny_spec(blocks=12, kernel_launches=2)
        gpu = build_gpu(small_cfg, [spec])
        gpu.distributor.dispatch(0)
        victim = next(s for s in gpu.sms if s.blocks)
        victim.set_owner(None)
        gpu.run()
        assert victim.owner is None
        assert victim.idle

    def test_l1_flushed_on_owner_change(self, small_cfg):
        gpu = GPU(small_cfg)
        sm = gpu.sms[0]
        sm.l1.access(1234)
        sm.set_owner(5)
        assert not sm.l1.probe(1234)


class TestWarpSchedulers:
    @pytest.mark.parametrize("sched", ["gto", "lrr"])
    def test_both_schedulers_complete(self, sched, tiny_spec):
        cfg = small_test_config(scheduler=sched)
        res = simulate(cfg, [Application("a", tiny_spec)])
        assert res.app_stats[0].finished

    def test_schedulers_differ_in_timing(self):
        spec = make_tiny_spec(blocks=4, warps_per_block=4,
                              mem_fraction=0.3, working_set_kb=512,
                              pattern="random")
        gto = simulate(small_test_config(scheduler="gto"),
                       [Application("a", spec)]).cycles
        lrr = simulate(small_test_config(scheduler="lrr"),
                       [Application("a", spec)]).cycles
        # They need not be ordered, but the policies should not be no-ops.
        assert gto > 0 and lrr > 0

    def test_issue_bound_respected(self):
        """A fully compute-bound kernel cannot exceed issue_width
        warp-instructions per SM per cycle."""
        cfg = small_test_config()
        spec = make_tiny_spec(blocks=16, warps_per_block=4,
                              mem_fraction=0.0, dep_gap=1.0,
                              instr_per_warp=200)
        res = simulate(cfg, [Application("a", spec)])
        per_sm_warp_ipc = (res.app_stats[0].warp_instructions
                           / res.cycles / cfg.num_sms)
        assert per_sm_warp_ipc <= cfg.issue_width * 1.05

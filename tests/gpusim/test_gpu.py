"""End-to-end tests of the GPU device model."""

import pytest

from repro.gpusim import (Application, Callback, GPU, KernelSpec,
                          even_partition, proportional_partition, simulate,
                          small_test_config)

from ..conftest import make_tiny_spec


class TestSoloExecution:
    def test_kernel_completes(self, small_cfg, tiny_app):
        res = simulate(small_cfg, [tiny_app])
        assert res.app_stats[0].finished
        assert res.cycles > 0

    def test_instruction_conservation(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("x", tiny_spec)])
        expected = tiny_spec.total_warp_instructions * small_cfg.warp_size
        assert res.app_stats[0].thread_instructions == expected

    def test_block_accounting(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("x", tiny_spec)])
        assert res.app_stats[0].blocks_completed == tiny_spec.total_blocks

    def test_determinism(self, small_cfg, tiny_spec):
        r1 = simulate(small_cfg, [Application("x", tiny_spec)])
        r2 = simulate(small_cfg, [Application("x", tiny_spec)])
        assert r1.cycles == r2.cycles
        assert (r1.app_stats[0].dram_accesses
                == r2.app_stats[0].dram_accesses)

    def test_pure_compute_kernel(self, small_cfg):
        spec = make_tiny_spec(mem_fraction=0.0)
        res = simulate(small_cfg, [Application("c", spec)])
        assert res.app_stats[0].mem_instructions == 0
        assert res.app_stats[0].dram_accesses == 0

    def test_memory_heavy_kernel_slower(self, small_cfg):
        fast = simulate(small_cfg, [Application(
            "c", make_tiny_spec(mem_fraction=0.0))]).cycles
        slow = simulate(small_cfg, [Application(
            "m", make_tiny_spec(mem_fraction=0.5, working_set_kb=4096,
                                pattern="random"))]).cycles
        assert slow > fast

    def test_device_throughput_positive(self, small_cfg, tiny_app):
        res = simulate(small_cfg, [tiny_app])
        assert res.device_throughput > 0
        assert 0 < res.device_utilization <= 1.0

    def test_multi_launch_serializes(self, small_cfg):
        one = simulate(small_cfg, [Application(
            "k1", make_tiny_spec(kernel_launches=1))]).cycles
        four = simulate(small_cfg, [Application(
            "k4", make_tiny_spec(kernel_launches=4))]).cycles
        assert four > 3 * one  # launches are back-to-back, not overlapped

    def test_max_blocks_per_sm_cap(self, small_cfg):
        capped = make_tiny_spec(blocks=16, max_blocks_per_sm=1)
        res = simulate(small_cfg, [Application("x", capped)])
        free = simulate(small_cfg, [Application(
            "y", make_tiny_spec(blocks=16))])
        assert res.cycles >= free.cycles  # lower occupancy can't be faster


class TestConcurrentExecution:
    def test_two_apps_complete(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("a", tiny_spec),
                                   Application("b", tiny_spec)])
        assert all(s.finished for s in res.app_stats.values())

    def test_partition_isolation_of_l1(self, small_cfg, tiny_spec):
        gpu = GPU(small_cfg)
        gpu.launch([Application("a", tiny_spec), Application("b", tiny_spec)])
        owners = {sm.owner for sm in gpu.sms}
        assert owners == {0, 1}

    def test_explicit_partitions(self, small_cfg, tiny_spec):
        res = simulate(small_cfg,
                       [Application("a", tiny_spec),
                        Application("b", tiny_spec)],
                       partitions=[[0], [1, 2, 3]])
        assert all(s.finished for s in res.app_stats.values())

    def test_overlapping_partitions_rejected(self, small_cfg, tiny_spec):
        gpu = GPU(small_cfg)
        with pytest.raises(ValueError):
            gpu.launch([Application("a", tiny_spec),
                        Application("b", tiny_spec)],
                       partitions=[[0, 1], [1, 2]])

    def test_empty_partition_rejected(self, small_cfg, tiny_spec):
        gpu = GPU(small_cfg)
        with pytest.raises(ValueError):
            gpu.launch([Application("a", tiny_spec),
                        Application("b", tiny_spec)],
                       partitions=[[], [0, 1]])

    def test_partition_count_mismatch_rejected(self, small_cfg, tiny_spec):
        gpu = GPU(small_cfg)
        with pytest.raises(ValueError):
            gpu.launch([Application("a", tiny_spec)], partitions=[[0], [1]])

    def test_no_apps_rejected(self, small_cfg):
        gpu = GPU(small_cfg)
        with pytest.raises(ValueError):
            gpu.launch([])
        with pytest.raises(RuntimeError):
            GPU(small_cfg).run()

    def test_co_run_slows_apps_down(self, small_cfg):
        spec = make_tiny_spec(mem_fraction=0.3, working_set_kb=2048,
                              pattern="random", blocks=12)
        solo = simulate(small_cfg, [Application("a", spec)]).cycles
        co = simulate(small_cfg, [Application("a", spec),
                                  Application("b", spec)])
        assert co.app_stats[0].finish_cycle >= solo

    def test_reassign_on_finish_helps_survivor(self, small_cfg):
        """When the short app finishes, the long app should expand onto
        the freed SMs at its next kernel launch and finish sooner than
        with reassignment disabled."""
        long_spec = make_tiny_spec(blocks=16, kernel_launches=6,
                                   mem_fraction=0.05)
        short_spec = make_tiny_spec(blocks=4, instr_per_warp=20)

        def run(reassign):
            gpu = GPU(small_cfg)
            gpu.reassign_on_finish = reassign
            gpu.launch([Application("long", long_spec),
                        Application("short", short_spec)])
            return gpu.run().app_stats[0].finish_cycle

        assert run(True) < run(False)


class TestCallbacks:
    def test_callback_fires_periodically(self, small_cfg, tiny_spec):
        ticks = []
        gpu = GPU(small_cfg)
        gpu.launch([Application("a", tiny_spec)])
        gpu.run(callbacks=(Callback(100, lambda g, now: ticks.append(now)),))
        assert ticks
        assert all(t % 100 == 0 for t in ticks)
        assert ticks == sorted(ticks)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Callback(0, lambda g, n: None)

    def test_max_cycles_cap(self, small_cfg, tiny_spec):
        gpu = GPU(small_cfg)
        gpu.launch([Application("a", make_tiny_spec(instr_per_warp=5000))])
        res = gpu.run(max_cycles=500)
        assert res.cycles <= 500


class TestPartitionHelpers:
    def test_even_partition_covers_all(self):
        groups = even_partition(10, 3)
        flat = [i for g in groups for i in g]
        assert sorted(flat) == list(range(10))
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_even_partition_exact(self):
        assert even_partition(4, 2) == [[0, 1], [2, 3]]

    def test_even_partition_validation(self):
        with pytest.raises(ValueError):
            even_partition(4, 0)

    def test_proportional_partition(self):
        groups = proportional_partition(10, [3.0, 1.0])
        assert len(groups[0]) > len(groups[1])
        assert sum(len(g) for g in groups) == 10

    def test_proportional_partition_minimum_one(self):
        groups = proportional_partition(10, [100.0, 0.001])
        assert len(groups[1]) >= 1

    def test_proportional_zero_weights_fall_back_to_even(self):
        groups = proportional_partition(4, [0.0, 0.0])
        assert [len(g) for g in groups] == [2, 2]

    def test_proportional_validation(self):
        with pytest.raises(ValueError):
            proportional_partition(1, [1.0, 1.0])
        with pytest.raises(ValueError):
            proportional_partition(4, [])


class TestDeviceResult:
    def test_by_name(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("alpha", tiny_spec)])
        assert res.by_name("alpha").finished
        with pytest.raises(KeyError):
            res.by_name("beta")

    def test_app_cycles(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("alpha", tiny_spec)])
        assert res.app_cycles(0) == res.app_stats[0].finish_cycle

"""Tests for the address → (partition, bank, row) mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import AddressMap, gtx480, small_test_config


@pytest.fixture
def amap(gtx_cfg):
    return AddressMap(gtx_cfg)


class TestBasicMapping:
    def test_line_of(self, amap):
        assert amap.line_of(0) == 0
        assert amap.line_of(127) == 0
        assert amap.line_of(128) == 1

    def test_line_addr_alignment(self, amap):
        assert amap.line_addr(130) == 128
        assert amap.line_addr(128) == 128

    def test_consecutive_lines_round_robin_partitions(self, amap, gtx_cfg):
        parts = [amap.locate_line(i).partition
                 for i in range(gtx_cfg.num_partitions * 2)]
        assert parts[:gtx_cfg.num_partitions] == list(
            range(gtx_cfg.num_partitions))
        assert parts == parts[:gtx_cfg.num_partitions] * 2

    def test_partition_local_lines_round_robin_banks(self, amap, gtx_cfg):
        p = gtx_cfg.num_partitions
        banks = [amap.locate_line(i * p).bank
                 for i in range(gtx_cfg.banks_per_partition)]
        assert banks == list(range(gtx_cfg.banks_per_partition))

    def test_row_advances_after_full_span(self, amap, gtx_cfg):
        span = (gtx_cfg.num_partitions * gtx_cfg.banks_per_partition
                * gtx_cfg.lines_per_row)
        assert amap.locate_line(0).row == 0
        assert amap.locate_line(span - 1).row == 0
        assert amap.locate_line(span).row == 1

    def test_locate_matches_locate_line(self, amap):
        addr = 12345 * 128 + 17
        assert amap.locate(addr) == amap.locate_line(12345)


class TestMappingProperties:
    @given(line=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_location_in_bounds(self, line):
        cfg = gtx480()
        loc = AddressMap(cfg).locate_line(line)
        assert 0 <= loc.partition < cfg.num_partitions
        assert 0 <= loc.bank < cfg.banks_per_partition
        assert loc.row >= 0

    @given(line=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_row_stride_lands_in_same_bank_row(self, line):
        """Lines `stride = P*B` apart share partition and bank, and share
        the row as long as they stay inside one row span (the invariant
        the row_local address generator and BLK's strided pattern use)."""
        cfg = gtx480()
        amap = AddressMap(cfg)
        stride = cfg.num_partitions * cfg.banks_per_partition
        a = amap.locate_line(line)
        b = amap.locate_line(line + stride)
        assert a.partition == b.partition
        assert a.bank == b.bank
        assert b.row in (a.row, a.row + 1)

    @given(line=st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=100, deadline=None)
    def test_mapping_deterministic(self, line):
        cfg = small_test_config()
        amap = AddressMap(cfg)
        assert amap.locate_line(line) == amap.locate_line(line)

    @given(lines=st.lists(st.integers(min_value=0, max_value=10**7),
                          min_size=2, max_size=50, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_distinct_lines_same_bank_row_only_if_congruent(self, lines):
        """Two different lines map to the same (partition, bank) only when
        congruent mod P*B."""
        cfg = small_test_config()
        amap = AddressMap(cfg)
        stride = cfg.num_partitions * cfg.banks_per_partition
        for i, a in enumerate(lines):
            for b in lines[i + 1:]:
                la, lb = amap.locate_line(a), amap.locate_line(b)
                if (la.partition, la.bank) == (lb.partition, lb.bank):
                    assert a % stride == b % stride

"""Tests for the statistics counters and SMRA observation windows."""

import pytest

from repro.gpusim import small_test_config
from repro.gpusim.stats import AppStats, StatsBoard, WindowSample


class TestAppStats:
    def test_ipc(self):
        s = AppStats(app_id=0, thread_instructions=1000)
        assert s.ipc(now=100) == pytest.approx(10.0)

    def test_cycles_use_finish_when_done(self):
        s = AppStats(app_id=0, start_cycle=10, finish_cycle=110,
                     thread_instructions=100)
        assert s.cycles(now=10_000) == 100
        assert s.ipc(10_000) == pytest.approx(1.0)

    def test_bandwidth_conversions(self, small_cfg):
        s = AppStats(app_id=0, dram_bytes=1000, l2_to_l1_bytes=700)
        assert s.memory_bandwidth_gbps(1000, small_cfg) == pytest.approx(0.7)
        assert s.l2_to_l1_bandwidth_gbps(1000, small_cfg) == pytest.approx(0.49)

    def test_mem_compute_ratio(self):
        s = AppStats(app_id=0, mem_instructions=10, alu_instructions=100)
        assert s.mem_compute_ratio == pytest.approx(0.1)

    def test_mem_compute_ratio_no_alu(self):
        s = AppStats(app_id=0, mem_instructions=10)
        assert s.mem_compute_ratio == float("inf")

    def test_finished_flag(self):
        s = AppStats(app_id=0)
        assert not s.finished
        s.finish_cycle = 50
        assert s.finished


class TestStatsBoard:
    def test_register_and_lookup(self, small_cfg):
        board = StatsBoard(small_cfg)
        board.register(0, "a")
        assert board[0].name == "a"

    def test_device_throughput(self, small_cfg):
        board = StatsBoard(small_cfg)
        board.register(0, "a").thread_instructions = 500
        board.register(1, "b").thread_instructions = 300
        assert board.device_throughput(100) == pytest.approx(8.0)
        assert board.device_utilization(100) == pytest.approx(
            8.0 / small_cfg.peak_ipc)

    def test_window_delta_without_mark(self, small_cfg):
        board = StatsBoard(small_cfg)
        s = board.register(0, "a", start_cycle=0)
        s.thread_instructions = 100
        s.dram_bytes = 256
        sample = board.window_delta(0, now=50)
        assert sample.thread_instructions == 100
        assert sample.cycles == 50

    def test_window_delta_after_mark(self, small_cfg):
        board = StatsBoard(small_cfg)
        s = board.register(0, "a")
        s.thread_instructions = 100
        board.mark_window(now=10)
        s.thread_instructions = 260
        s.dram_bytes = 512
        sample = board.window_delta(0, now=20)
        assert sample.thread_instructions == 160
        assert sample.dram_bytes == 512
        assert sample.cycles == 10
        assert sample.ipc == pytest.approx(16.0)

    def test_bandwidth_utilization_fraction(self, small_cfg):
        sample = WindowSample(thread_instructions=0, dram_bytes=0, cycles=10)
        assert sample.bandwidth_utilization(small_cfg) == 0.0
        # One full line per cycle:
        per_cycle = small_cfg.line_size
        sample = WindowSample(0, per_cycle * 10, 10)
        util = sample.bandwidth_utilization(small_cfg)
        expected = (small_cfg.bytes_per_cycle_to_gbps(per_cycle)
                    / small_cfg.peak_dram_bandwidth_gbps)
        assert util == pytest.approx(expected)

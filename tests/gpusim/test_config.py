"""Tests for the device configuration (Table 4.1)."""

import dataclasses

import pytest

from repro.gpusim import DramTiming, GPUConfig, gtx480, small_test_config


class TestTable41:
    """The gtx480() factory must match the paper's experimental setup."""

    def test_num_sms(self, gtx_cfg):
        assert gtx_cfg.num_sms == 60

    def test_core_frequency(self, gtx_cfg):
        assert gtx_cfg.core_clock_mhz == 700

    def test_warps_per_sm(self, gtx_cfg):
        assert gtx_cfg.max_warps_per_sm == 48

    def test_blocks_per_sm(self, gtx_cfg):
        assert gtx_cfg.max_blocks_per_sm == 8

    def test_l1_size(self, gtx_cfg):
        assert gtx_cfg.l1_size_kb == 16

    def test_l2_size(self, gtx_cfg):
        assert gtx_cfg.l2_size_kb == 768

    def test_warp_scheduler_is_gto(self, gtx_cfg):
        assert gtx_cfg.scheduler == "gto"

    def test_memory_scheduler_is_frfcfs(self, gtx_cfg):
        assert gtx_cfg.mem_scheduler == "frfcfs"


class TestDerivedQuantities:
    def test_l1_geometry(self, gtx_cfg):
        assert gtx_cfg.l1_lines == 16 * 1024 // 128
        assert gtx_cfg.l1_sets * gtx_cfg.l1_assoc == gtx_cfg.l1_lines

    def test_l2_slice_size(self, gtx_cfg):
        assert gtx_cfg.l2_slice_kb == 768 // 6

    def test_l2_slice_geometry(self, gtx_cfg):
        lines = gtx_cfg.l2_slice_kb * 1024 // gtx_cfg.line_size
        assert gtx_cfg.l2_slice_sets * gtx_cfg.l2_assoc == lines

    def test_lines_per_row(self, gtx_cfg):
        assert gtx_cfg.lines_per_row == 2048 // 128

    def test_peak_ipc(self, gtx_cfg):
        assert gtx_cfg.peak_ipc == 60 * 1 * 32

    def test_peak_dram_bandwidth_near_gtx480(self, gtx_cfg):
        # The GTX 480's theoretical bandwidth is ~177 GB/s.
        assert 160 <= gtx_cfg.peak_dram_bandwidth_gbps <= 200

    def test_bytes_per_cycle_conversion(self, gtx_cfg):
        # 1 byte/cycle at 700 MHz = 0.7 GB/s.
        assert gtx_cfg.bytes_per_cycle_to_gbps(1.0) == pytest.approx(0.7)

    def test_with_sms(self, gtx_cfg):
        smaller = gtx_cfg.with_sms(30)
        assert smaller.num_sms == 30
        assert smaller.l2_size_kb == gtx_cfg.l2_size_kb
        assert gtx_cfg.num_sms == 60  # original untouched (frozen)


class TestValidation:
    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(scheduler="fifo")

    def test_bad_mem_scheduler_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(mem_scheduler="open-row")

    def test_bad_l2_insertion_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(l2_insertion="plru")

    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_config_is_frozen(self, gtx_cfg):
        with pytest.raises(dataclasses.FrozenInstanceError):
            gtx_cfg.num_sms = 10

    def test_config_hashable(self, gtx_cfg):
        # Profiler/interference caches key on the config.
        assert hash(gtx_cfg) == hash(gtx480())

    def test_overrides(self):
        cfg = gtx480(scheduler="lrr", mem_scheduler="fcfs")
        assert cfg.scheduler == "lrr"
        assert cfg.mem_scheduler == "fcfs"


class TestSmallConfig:
    def test_small_config_is_smaller(self, small_cfg, gtx_cfg):
        assert small_cfg.num_sms < gtx_cfg.num_sms
        assert small_cfg.l2_size_kb < gtx_cfg.l2_size_kb

    def test_small_config_valid_geometry(self, small_cfg):
        assert small_cfg.l1_sets >= 1
        assert small_cfg.l2_slice_sets >= 1
        assert small_cfg.lines_per_row >= 1


class TestDramTiming:
    def test_row_hit_cheaper_than_miss(self):
        t = DramTiming()
        assert t.row_hit < t.row_miss

    def test_row_window_positive(self):
        assert DramTiming().row_window >= 1

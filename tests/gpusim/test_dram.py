"""Tests for the DRAM banks, FR-FCFS model, and memory partitions."""

import pytest

from repro.gpusim import (Application, DramBank, GPU, MemorySystem,
                          small_test_config)
from repro.gpusim.stats import StatsBoard


class TestDramBank:
    def test_first_access_misses(self):
        bank = DramBank(window=4)
        done, hit = bank.service(row=5, arrival=0, t_hit=3, t_miss=40,
                                 fcfs_time=None)
        assert not hit
        assert done == 40

    def test_repeat_row_hits(self):
        bank = DramBank(window=4)
        bank.service(5, 0, 3, 40, None)
        done, hit = bank.service(5, 40, 3, 40, None)
        assert hit
        assert done == 43

    def test_row_window_eviction(self):
        bank = DramBank(window=2)
        bank.service(1, 0, 3, 40, None)
        bank.service(2, 0, 3, 40, None)
        bank.service(3, 0, 3, 40, None)  # evicts row 1
        _done, hit = bank.service(1, 200, 3, 40, None)
        assert not hit

    def test_window_recency_refresh(self):
        bank = DramBank(window=2)
        bank.service(1, 0, 3, 40, None)
        bank.service(2, 0, 3, 40, None)
        bank.service(1, 0, 3, 40, None)  # refresh row 1 → row 2 is LRU
        bank.service(3, 0, 3, 40, None)  # evicts row 2
        assert bank.service(1, 500, 3, 40, None)[1]      # row 1 still hot
        assert not bank.service(2, 900, 3, 40, None)[1]  # row 2 evicted

    def test_queueing_delay(self):
        bank = DramBank(window=4)
        bank.service(1, 0, 3, 40, None)      # busy until 40
        done, _ = bank.service(2, 10, 3, 40, None)
        assert done == 80  # started at 40, not 10

    def test_idle_bank_serves_at_arrival(self):
        bank = DramBank(window=4)
        done, _ = bank.service(1, 1000, 3, 40, None)
        assert done == 1040

    def test_fcfs_override_charges_blended_cost(self):
        bank = DramBank(window=4)
        bank.service(5, 0, 3, 40, fcfs_time=21)
        done, hit = bank.service(5, 100, 3, 40, fcfs_time=21)
        assert hit  # the row is tracked either way
        assert done == 121  # but the cost is the blended FCFS time

    def test_row_hit_rate(self):
        bank = DramBank(window=4)
        bank.service(5, 0, 3, 40, None)
        bank.service(5, 0, 3, 40, None)
        assert bank.row_hit_rate == pytest.approx(0.5)


class TestMemorySystem:
    def _system(self, cfg):
        stats = StatsBoard(cfg)
        stats.register(0, "app")
        return MemorySystem(cfg, stats), stats

    def test_l2_hit_faster_than_dram(self, small_cfg):
        mem, stats = self._system(small_cfg)
        first = mem.access_line(0, now=0, app_id=0)
        second = mem.access_line(0, now=first, app_id=0)
        assert second - first < first  # L2 hit latency < DRAM latency

    def test_l2_hit_counts_l2_to_l1_bytes(self, small_cfg):
        mem, stats = self._system(small_cfg)
        mem.access_line(0, 0, 0)
        assert stats[0].dram_bytes == small_cfg.line_size
        t = mem.access_line(0, 10_000, 0)
        assert stats[0].l2_to_l1_bytes == small_cfg.line_size
        assert stats[0].l2_hits == 1

    def test_distinct_lines_spread_partitions(self, small_cfg):
        mem, _ = self._system(small_cfg)
        locs = {mem.amap.locate_line(i).partition
                for i in range(small_cfg.num_partitions)}
        assert len(locs) == small_cfg.num_partitions

    def test_bandwidth_limit_queues_requests(self, small_cfg):
        """Back-to-back misses to one partition must serialize on the bus."""
        mem, _ = self._system(small_cfg)
        p = small_cfg.num_partitions
        # All to partition 0, distinct banks/rows → bus is the bottleneck.
        finishes = [mem.access_line(i * p * 999983, now=0, app_id=0)
                    for i in range(20)]
        assert finishes == sorted(finishes)
        spacing = (finishes[-1] - finishes[0]) / 19
        assert spacing >= small_cfg.dram.bus * 0.9

    def test_row_hit_rate_aggregation(self, small_cfg):
        mem, _ = self._system(small_cfg)
        mem.access_line(0, 0, 0)
        assert 0.0 <= mem.row_hit_rate() <= 1.0
        assert 0.0 <= mem.l2_hit_rate() <= 1.0


class TestFcfsAblation:
    def test_fcfs_removes_streaming_advantage(self):
        """Under FR-FCFS a row-local stream is served much faster than
        under plain FCFS (the paper's explanation for class M winning)."""
        import repro.gpusim as g

        def run(mem_scheduler):
            cfg = small_test_config(mem_scheduler=mem_scheduler)
            spec = g.KernelSpec(
                "stream", blocks=8, warps_per_block=2, instr_per_warp=120,
                mem_fraction=0.5, tx_per_access=4, working_set_kb=4096,
                pattern="strided",
                stride_lines=cfg.num_partitions * cfg.banks_per_partition)
            res = g.simulate(cfg, [g.Application("s", spec)])
            return res.cycles

        assert run("frfcfs") < run("fcfs")

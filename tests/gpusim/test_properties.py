"""Property-based tests on whole-simulation invariants.

Hypothesis generates random (small) kernels; every run must conserve
instructions, respect capacity limits, and be deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Application, KernelSpec, simulate, small_test_config

spec_strategy = st.builds(
    KernelSpec,
    name=st.just("prop"),
    blocks=st.integers(1, 12),
    warps_per_block=st.integers(1, 4),
    instr_per_warp=st.integers(1, 120),
    mem_fraction=st.floats(0.0, 0.6),
    dep_gap=st.floats(1.0, 8.0),
    tx_per_access=st.integers(1, 8),
    working_set_kb=st.sampled_from([16, 64, 256, 2048]),
    pattern=st.sampled_from(["stream", "random", "strided", "row_local"]),
    row_locality=st.floats(0.0, 1.0),
    stride_lines=st.integers(1, 64),
    hot_fraction=st.floats(0.0, 0.8),
    hot_set_kb=st.sampled_from([16, 64]),
    kernel_launches=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)


class TestSimulationInvariants:
    @given(spec=spec_strategy)
    @settings(max_examples=25, deadline=None)
    def test_instruction_conservation(self, spec):
        cfg = small_test_config()
        res = simulate(cfg, [Application("p", spec)])
        stats = res.app_stats[0]
        assert stats.finished
        assert stats.thread_instructions == (
            spec.total_warp_instructions * cfg.warp_size)
        assert stats.blocks_completed == spec.total_blocks

    @given(spec=spec_strategy)
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, spec):
        cfg = small_test_config()
        a = simulate(cfg, [Application("p", spec)])
        b = simulate(cfg, [Application("p", spec)])
        assert a.cycles == b.cycles
        assert (a.app_stats[0].dram_accesses
                == b.app_stats[0].dram_accesses)
        assert a.app_stats[0].l1_hits == b.app_stats[0].l1_hits

    @given(spec=spec_strategy)
    @settings(max_examples=20, deadline=None)
    def test_counter_consistency(self, spec):
        cfg = small_test_config()
        res = simulate(cfg, [Application("p", spec)])
        s = res.app_stats[0]
        # ALU + memory instruction counts add up.
        assert s.alu_instructions + s.mem_instructions == s.warp_instructions
        # Every transaction was served by exactly one level.
        assert s.l1_hits + s.l2_hits + s.dram_accesses == s.mem_transactions
        # Byte counters match the serving level.
        assert s.dram_bytes == s.dram_accesses * cfg.line_size
        assert s.l2_to_l1_bytes == s.l2_hits * cfg.line_size
        assert s.dram_row_hits <= s.dram_accesses

    @given(spec=spec_strategy)
    @settings(max_examples=15, deadline=None)
    def test_throughput_bounded_by_peak(self, spec):
        cfg = small_test_config()
        res = simulate(cfg, [Application("p", spec)])
        assert 0 < res.device_utilization <= 1.0 + 1e-9

    @given(spec=spec_strategy, n_apps=st.integers(2, 3))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_runs_complete_and_conserve(self, spec, n_apps):
        cfg = small_test_config()
        apps = [Application(f"p{i}", spec) for i in range(n_apps)]
        # Need at least one SM per app.
        if n_apps > cfg.num_sms:
            return
        res = simulate(cfg, apps)
        for stats in res.app_stats.values():
            assert stats.finished
            assert stats.thread_instructions == (
                spec.total_warp_instructions * cfg.warp_size)

    @given(spec=spec_strategy)
    @settings(max_examples=10, deadline=None)
    def test_co_run_never_faster_than_both_solos_combined(self, spec):
        """Sanity: two copies of an app cannot finish in less time than a
        single copy takes alone on the same device (work doubled)."""
        cfg = small_test_config()
        solo = simulate(cfg, [Application("a", spec)]).cycles
        co = simulate(cfg, [Application("a", spec),
                            Application("b", spec)]).cycles
        assert co >= solo * 0.95  # small slack for dispatch edge effects

"""End-to-end integration: the full paper pipeline on the real suite.

These tests exercise the complete methodology at GTX-480 scale —
profile → classify → interference → ILP grouping → co-execution — and
assert the paper's headline *orderings* (they are the slowest tests in
the suite, a few seconds each thanks to profile/interference caching).
"""

import pytest

from repro.core import (FCFSPolicy, ILPPolicy, SerialPolicy, make_context,
                        run_queue)
from repro.gpusim import gtx480
from repro.workloads import RODINIA_SPECS, paper_queue


@pytest.fixture(scope="module")
def ctx():
    # samples_per_pair=2 gives the class matrix both benchmarks of each
    # class as aggressor/victim (one sample misses GUPS-as-aggressor and
    # changes the MC|M cell).
    return make_context(gtx480(), suite=dict(RODINIA_SPECS),
                        need_interference=True, samples_per_pair=2)


@pytest.fixture(scope="module")
def outcomes(ctx):
    queue = paper_queue()
    return {policy.name: run_queue(queue, policy, ctx)
            for policy in (SerialPolicy(), FCFSPolicy(2), ILPPolicy(2))}


class TestHeadlineOrdering:
    def test_co_scheduling_beats_serial(self, outcomes):
        serial = outcomes["Serial"].device_throughput
        assert outcomes["FCFS"].device_throughput > serial * 1.1
        assert outcomes["ILP"].device_throughput > serial * 1.1

    def test_ilp_beats_fcfs(self, outcomes):
        assert (outcomes["ILP"].device_throughput
                > outcomes["FCFS"].device_throughput)

    def test_instruction_totals_identical(self, outcomes):
        totals = {n: o.total_instructions for n, o in outcomes.items()}
        assert len(set(totals.values())) == 1

    def test_every_app_ran_once_per_policy(self, outcomes):
        expected = sorted(n for n, _ in paper_queue())
        for outcome in outcomes.values():
            ran = sorted(n for g in outcome.groups for n in g.members)
            assert ran == expected


class TestInterferenceStructure:
    def test_class_m_is_worst_aggressor(self, ctx):
        s = ctx.interference.slowdown
        for victim in range(4):
            assert s[victim][0] == max(s[victim])

    def test_mc_suffers_most_from_m(self, ctx):
        s = ctx.interference.slowdown
        assert s[1][0] == max(row[0] for row in s)

    def test_ilp_never_groups_the_two_m_apps(self, ctx):
        from repro.core import optimize_grouping
        classified = ctx.classify_queue(paper_queue())
        plan = optimize_grouping(classified, 2, ctx.interference)
        for group in plan.all_groups:
            assert not {"BLK", "GUPS"} <= set(group), \
                "the ILP paired the two class-M applications"

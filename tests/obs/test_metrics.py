"""Unit contract of repro.obs.metrics: deterministic instruments."""

import copy

import pytest

from repro.obs import HISTOGRAM_EDGES, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("fleet.launches").inc()
        reg.counter("fleet.launches").inc(4)
        assert reg.to_dict() == {"fleet.launches": 5}

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("c").inc(-1)

    def test_gauge_last_write_wins_and_remembers_peak(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("fleet.backlog")
        gauge.set(7)
        gauge.set(3)
        assert reg.to_dict() == {"fleet.backlog": {"value": 3, "peak": 7}}

    def test_histogram_fixed_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("cycles")
        for value in (1, 2, 3, 1000, 2 ** 40):
            h.observe(value)
        snap = reg.to_dict()["cycles"]
        assert snap["count"] == 5
        assert snap["sum"] == 1 + 2 + 3 + 1000 + 2 ** 40
        assert snap["min"] == 1
        assert snap["max"] == 2 ** 40
        assert snap["buckets"] == {"le_1": 1, "le_2": 1, "le_4": 1,
                                   "le_1024": 1, "inf": 1}

    def test_edges_are_powers_of_two(self):
        assert HISTOGRAM_EDGES[0] == 1
        assert all(b == 2 * a for a, b in zip(HISTOGRAM_EDGES,
                                              HISTOGRAM_EDGES[1:]))

    def test_name_pinned_to_instrument_type(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")


class TestRegistry:
    def test_to_dict_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.to_dict()) == ["a", "b"]
        assert reg.names() == ["a", "b"]

    def test_merge_sums_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("launches").inc(2)
        b.counter("launches").inc(3)
        a.histogram("cycles").observe(10)
        b.histogram("cycles").observe(5000)
        b.gauge("backlog").set(9)
        a.merge(b)
        snap = a.to_dict()
        assert snap["launches"] == 5
        assert snap["cycles"]["count"] == 2
        assert snap["cycles"]["min"] == 10
        assert snap["cycles"]["max"] == 5000
        assert snap["backlog"] == {"value": 9, "peak": 9}

    def test_merge_order_invariant_for_counters_and_histograms(self):
        # The fleet folds per-device registries in device-id order;
        # counters and histograms are commutative so the snapshot is
        # the same whatever order the fold happens in.
        def device_regs():
            regs = []
            for d in range(3):
                reg = MetricsRegistry()
                reg.counter("launches").inc(d + 1)
                reg.histogram("cycles").observe(100 * (d + 1))
                regs.append(reg)
            return regs

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for reg in device_regs():
            forward.merge(reg)
        for reg in reversed(device_regs()):
            backward.merge(reg)
        assert forward.to_dict() == backward.to_dict()

    def test_deepcopy_shares_identity(self):
        reg = MetricsRegistry()
        assert copy.deepcopy(reg) is reg

"""Unit contract of repro.obs.profiling: wall-clock phase timers."""

import copy

from repro.obs import PHASES, PhaseProfiler


class TestPhaseProfiler:
    def test_phase_accumulates_calls_and_time(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("simulate"):
                pass
        snap = prof.to_dict()
        assert list(snap) == ["simulate"]
        assert snap["simulate"]["calls"] == 3
        assert snap["simulate"]["total_s"] >= 0.0
        assert snap["simulate"]["max_s"] <= snap["simulate"]["total_s"] \
            + 1e-9

    def test_phase_records_time_even_when_body_raises(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("solver"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert prof.to_dict()["solver"]["calls"] == 1

    def test_canonical_phase_names_declared(self):
        assert set(PHASES) == {"simulate", "predict", "commit-check",
                               "placement", "solver", "merge"}

    def test_merge_folds_counts_and_totals(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("simulate"):
            pass
        with b.phase("simulate"):
            pass
        with b.phase("merge"):
            pass
        a.merge(b)
        snap = a.to_dict()
        assert snap["simulate"]["calls"] == 2
        assert snap["merge"]["calls"] == 1

    def test_format_table_lists_phases_by_total(self):
        prof = PhaseProfiler()
        with prof.phase("simulate"):
            sum(range(2000))
        with prof.phase("solver"):
            pass
        table = prof.format_table()
        assert "phase" in table and "share" in table
        assert "simulate" in table and "solver" in table

    def test_format_table_empty(self):
        assert "no phases" in PhaseProfiler().format_table()

    def test_deepcopy_shares_identity(self):
        prof = PhaseProfiler()
        assert copy.deepcopy(prof) is prof

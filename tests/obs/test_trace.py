"""Unit contract of repro.obs.trace: events, tracer, exporters."""

import copy
import json

import pytest

from repro.obs import (EVENT_KINDS, FLEET_PID, RecordingTracer, TraceEvent,
                       Tracer, export_chrome, export_jsonl, load_events,
                       render_trace, write_trace)


def sample_events():
    tracer = RecordingTracer()
    tracer.emit("arrival", 0, app="BFS2", arrival_cycle=0)
    tracer.emit("placement", 0, app="BFS2", device=1,
                candidates=[{"device": 0, "load": 1}])
    tracer.emit("launch", 10, device=1, members=["BFS2", "NN"],
                cycles=500, group_index=0)
    tracer.emit("group_finish", 510, device=1, members=["BFS2", "NN"],
                group_index=0)
    return tracer.events


class TestTracer:
    def test_base_tracer_is_a_noop(self):
        tracer = Tracer()
        assert tracer.enabled is False
        assert tracer.emit("launch", 0) is None

    def test_recording_tracer_records_in_order(self):
        events = sample_events()
        assert [e.kind for e in events] == [
            "arrival", "placement", "launch", "group_finish"]
        assert events[2].cycle == 10
        assert events[2].device == 1
        assert events[2].data["members"] == ["BFS2", "NN"]

    def test_unknown_kind_rejected(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError, match="unknown trace event kind"):
            tracer.emit("teleport", 0)

    def test_cycle_coerced_to_int(self):
        tracer = RecordingTracer()
        tracer.emit("arrival", 7.0, app="NN")
        assert tracer.events[0].cycle == 7
        assert isinstance(tracer.events[0].cycle, int)

    def test_deepcopy_shares_identity(self):
        # Policies carrying a tracer are deep-copied for prediction and
        # window snapshots; the tracer must never fork its event list.
        tracer = RecordingTracer()
        assert copy.deepcopy(tracer) is tracer
        holder = {"t": tracer}
        assert copy.deepcopy(holder)["t"] is tracer

    def test_event_round_trips_through_dict(self):
        for event in sample_events():
            assert TraceEvent.from_dict(event.to_dict()) == event


class TestExporters:
    def test_jsonl_one_sorted_object_per_line(self):
        text = export_jsonl(sample_events())
        lines = text.splitlines()
        assert len(lines) == 4
        assert text.endswith("\n")
        for line in lines:
            payload = json.loads(line)
            assert list(payload) == sorted(payload)
            assert payload["kind"] in EVENT_KINDS

    def test_jsonl_empty_trace_is_empty_string(self):
        assert export_jsonl([]) == ""

    def test_chrome_envelope_and_pid_mapping(self):
        doc = json.loads(export_chrome(sample_events()))
        entries = doc["traceEvents"]
        names = {e["pid"]: e["args"]["name"] for e in entries
                 if e["ph"] == "M"}
        assert names[FLEET_PID] == "fleet"
        assert names[2] == "device 1"
        launch = next(e for e in entries
                      if e["ph"] == "X")
        assert launch["ts"] == 10
        assert launch["dur"] == 500
        assert launch["pid"] == 2
        instants = [e for e in entries if e["ph"] == "i"]
        assert len(instants) == 3

    def test_chrome_args_echo_enough_to_round_trip(self):
        doc = json.loads(export_chrome(sample_events()))
        kinds = [e["args"]["kind"] for e in doc["traceEvents"]
                 if e["ph"] != "M"]
        assert kinds == ["arrival", "placement", "launch", "group_finish"]

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            render_trace([], "xml")


class TestLoadEvents:
    def test_jsonl_round_trip(self, tmp_path):
        events = sample_events()
        path = write_trace(events, str(tmp_path / "t.jsonl"), "jsonl")
        assert load_events(path) == events

    def test_chrome_round_trip_preserves_kind_cycle_device(self, tmp_path):
        events = sample_events()
        path = write_trace(events, str(tmp_path / "t.chrome"), "chrome")
        loaded = load_events(path)
        assert [(e.kind, e.cycle, e.device, e.app) for e in loaded] \
            == [(e.kind, e.cycle, e.device, e.app) for e in events]

    def test_single_line_jsonl_not_mistaken_for_chrome(self, tmp_path):
        # Both formats start with "{"; the discriminator is the
        # traceEvents envelope, not the first byte.
        event = TraceEvent(kind="arrival", cycle=3, app="NN")
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps(event.to_dict()) + "\n")
        assert load_events(str(path)) == [event]

"""Shared fixtures for the test suite.

Unit tests run on a scaled-down device (:func:`small_test_config`) with
tiny kernels so the whole suite stays fast; a handful of calibration
tests use the full GTX-480 configuration and are marked ``slow``-ish but
still complete in a few seconds thanks to the event-lean simulator.
"""

import pytest

from repro.gpusim import Application, KernelSpec, gtx480, small_test_config


@pytest.fixture
def small_cfg():
    return small_test_config()


@pytest.fixture(scope="session")
def gtx_cfg():
    return gtx480()


def make_tiny_spec(name="tiny", **overrides):
    """A small kernel that exercises compute + memory paths quickly."""
    params = dict(
        blocks=8, warps_per_block=2, instr_per_warp=60,
        mem_fraction=0.15, dep_gap=2.0, tx_per_access=2,
        working_set_kb=64, pattern="stream", seed=7,
    )
    params.update(overrides)
    return KernelSpec(name, **params)


@pytest.fixture
def tiny_spec():
    return make_tiny_spec()


@pytest.fixture
def tiny_app(tiny_spec):
    return Application("tiny", tiny_spec)

"""Tests for the synthetic class-targeted kernel generator."""

import pytest

from repro.core import ClassificationThresholds, classify, shared_profiler
from repro.workloads import CLASSES, synthetic_spec


class TestGeneration:
    @pytest.mark.parametrize("cls", CLASSES)
    def test_specs_valid(self, cls):
        spec = synthetic_spec(cls, seed=0)
        assert spec.total_warp_instructions > 0

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            synthetic_spec("X")

    def test_deterministic(self):
        assert synthetic_spec("M", seed=5) == synthetic_spec("M", seed=5)

    def test_seeds_vary(self):
        assert synthetic_spec("M", seed=1) != synthetic_spec("M", seed=2)

    def test_custom_name(self):
        assert synthetic_spec("C", name="mine").name == "mine"

    def test_class_character(self):
        m = synthetic_spec("M", seed=0)
        a = synthetic_spec("A", seed=0)
        c = synthetic_spec("C", seed=0)
        assert m.working_set_kb > a.working_set_kb
        assert m.mem_fraction > a.mem_fraction
        assert c.pattern == "random"


class TestClassTargets:
    """Generated kernels should profile into their intended class on the
    full device (spot-checked for a couple of seeds per class)."""

    @pytest.mark.parametrize("cls", CLASSES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_profiles_into_class(self, cls, seed, gtx_cfg):
        profiler = shared_profiler(gtx_cfg)
        spec = synthetic_spec(cls, seed=seed)
        metrics = profiler.profile(spec.name, spec)
        thresholds = ClassificationThresholds.for_device(gtx_cfg)
        assert str(classify(metrics, thresholds)) == cls

"""Tests for the calibrated Rodinia benchmark models.

The classification tests run each model solo on the full GTX-480
configuration — this is the repository's core calibration contract
(Table 3.2) and takes a few seconds in total.
"""

import pytest

from repro.core import (ClassificationThresholds, classify, shared_profiler)
from repro.workloads import (ALL_BENCHMARKS, BENCHMARK_ORDER, RODINIA_SPECS,
                             TABLE_3_2_CLASSES, base_benchmark_name,
                             benchmark_spec, make_application)


class TestSuiteShape:
    def test_fourteen_benchmarks(self):
        assert len(RODINIA_SPECS) == 14
        assert set(RODINIA_SPECS) == set(TABLE_3_2_CLASSES)

    def test_class_census_matches_paper(self):
        """2 class M, 5 class MC, 2 class C, 5 class A (§4.1)."""
        census = {}
        for cls in TABLE_3_2_CLASSES.values():
            census[cls] = census.get(cls, 0) + 1
        assert census == {"M": 2, "MC": 5, "C": 2, "A": 5}

    def test_benchmark_order_covers_chart_names(self):
        assert set(BENCHMARK_ORDER) <= set(ALL_BENCHMARKS)

    def test_all_specs_valid(self):
        for name, spec in RODINIA_SPECS.items():
            assert spec.name == name
            assert spec.total_warp_instructions > 0

    def test_seeds_unique(self):
        seeds = [s.seed for s in RODINIA_SPECS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_benchmark_spec_scaling(self):
        full = benchmark_spec("HS")
        half = benchmark_spec("HS", scale=0.5)
        assert half.instr_per_warp == full.instr_per_warp // 2

    def test_make_application_instances(self):
        a = make_application("HS")
        b = make_application("HS", instance=2)
        assert a.name == "HS" and b.name == "HS#2"
        assert base_benchmark_name(b.name) == "HS"


class TestTable32Calibration:
    """Every model must land in its Table 3.2 class when profiled solo on
    the paper's device — the headline calibration result."""

    @pytest.fixture(scope="class")
    def profiles(self, gtx_cfg):
        profiler = shared_profiler(gtx_cfg)
        return {name: profiler.profile(name, spec)
                for name, spec in RODINIA_SPECS.items()}

    @pytest.mark.parametrize("name", sorted(RODINIA_SPECS))
    def test_classifies_as_table_3_2(self, name, profiles, gtx_cfg):
        thresholds = ClassificationThresholds.for_device(gtx_cfg)
        got = classify(profiles[name], thresholds)
        assert str(got) == TABLE_3_2_CLASSES[name], (
            f"{name}: {profiles[name].columns} -> {got}")

    def test_gups_has_lowest_ipc_of_class_m(self, profiles):
        assert profiles["GUPS"].ipc < profiles["BLK"].ipc

    def test_class_m_apps_have_highest_bandwidth(self, profiles):
        m_mb = min(profiles[n].memory_bandwidth_gbps for n in ("BLK", "GUPS"))
        others = max(profiles[n].memory_bandwidth_gbps
                     for n in RODINIA_SPECS if n not in ("BLK", "GUPS"))
        assert m_mb > others

    def test_class_c_apps_have_high_l2_traffic(self, profiles):
        for name in ("BFS2", "SPMV"):
            assert profiles[name].l2_to_l1_gbps > 100.0

    def test_lud_barely_touches_memory(self, profiles):
        assert profiles["LUD"].memory_bandwidth_gbps < 5.0

    def test_utilizations_mostly_low(self, profiles):
        """Fig. 1.2's motivation: most benchmarks underutilize the
        device when running alone."""
        low = sum(1 for p in profiles.values() if p.utilization < 0.6)
        assert low >= 10

    def test_runtimes_same_order_of_magnitude(self, profiles):
        cycles = [p.solo_cycles for p in profiles.values()]
        assert max(cycles) / min(cycles) < 4.0


class TestScalabilityPersonalities:
    """Fig. 3.5's trends for the signature benchmarks."""

    @pytest.fixture(scope="class")
    def sweep(self, gtx_cfg):
        from repro.gpusim import Application, simulate
        out = {}
        for name in ("LUD", "HS", "FFT"):
            ipcs = []
            for sms in (10, 20, 30):
                cfg = gtx_cfg.with_sms(sms)
                res = simulate(cfg, [Application(name, RODINIA_SPECS[name])])
                ipcs.append(res.app_stats[0].ipc(res.cycles))
            out[name] = ipcs
        return out

    def test_lud_flat(self, sweep):
        ipcs = sweep["LUD"]
        assert max(ipcs) / min(ipcs) < 1.25

    def test_hs_scales(self, sweep):
        ipcs = sweep["HS"]
        assert ipcs[-1] > 1.8 * ipcs[0]

    def test_fft_saturates(self, sweep):
        ipcs = sweep["FFT"]
        growth_early = ipcs[1] / ipcs[0]
        growth_late = ipcs[2] / ipcs[1]
        assert growth_late < growth_early

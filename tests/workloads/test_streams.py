"""Tests for arrival-stream generators (workloads/streams.py)."""

import pytest

from repro.workloads import (RODINIA_SPECS, batch_arrivals, bursty_arrivals,
                             load_trace, poisson_arrivals, slice_arrivals,
                             stream_queue, trace_arrivals)


class TestStreamQueue:
    @pytest.mark.parametrize("length", [50, 120, 200])
    def test_requested_length(self, length):
        assert len(stream_queue(length, seed=1)) == length

    def test_names_unique(self):
        names = [n for n, _ in stream_queue(200, seed=2)]
        assert len(set(names)) == 200

    def test_deterministic_in_seed(self):
        a = stream_queue(80, seed=5)
        b = stream_queue(80, seed=5)
        assert [n for n, _ in a] == [n for n, _ in b]
        assert [s for _, s in a] == [s for _, s in b]

    def test_seed_changes_content(self):
        a = [n for n, _ in stream_queue(80, seed=5)]
        b = [n for n, _ in stream_queue(80, seed=6)]
        assert a != b

    def test_mixes_rodinia_and_synthetic(self):
        queue = stream_queue(100, seed=3, synthetic_fraction=0.5)
        synth = [n for n, _ in queue if n.startswith("SYN-")]
        rodinia = [n for n, _ in queue
                   if n.split("#", 1)[0] in RODINIA_SPECS]
        assert synth and rodinia
        assert len(synth) + len(rodinia) == 100

    def test_pure_rodinia_and_pure_synthetic(self):
        assert all(n.split("#", 1)[0] in RODINIA_SPECS
                   for n, _ in stream_queue(30, seed=1,
                                            synthetic_fraction=0.0))
        assert all(n.startswith("SYN-")
                   for n, _ in stream_queue(30, seed=1,
                                            synthetic_fraction=1.0))

    def test_scale_applies_to_rodinia(self):
        queue = stream_queue(40, seed=7, synthetic_fraction=0.0, scale=0.5)
        for name, spec in queue:
            base = RODINIA_SPECS[name.split("#", 1)[0]]
            assert spec.instr_per_warp == base.instr_per_warp // 2

    def test_scale_applies_to_synthetic(self):
        full = stream_queue(20, seed=7, synthetic_fraction=1.0)
        scaled = stream_queue(20, seed=7, synthetic_fraction=1.0, scale=0.5)
        for (name_f, spec_f), (name_s, spec_s) in zip(full, scaled):
            assert name_f == name_s
            assert spec_s.instr_per_warp == \
                max(1, int(spec_f.instr_per_warp * 0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            stream_queue(0)
        with pytest.raises(ValueError):
            stream_queue(10, synthetic_fraction=1.5)


class TestPoissonArrivals:
    def test_deterministic_in_seed(self):
        queue = stream_queue(60, seed=1)
        a = poisson_arrivals(queue, 2000, seed=9)
        b = poisson_arrivals(queue, 2000, seed=9)
        assert a == b
        c = poisson_arrivals(queue, 2000, seed=10)
        assert [x.cycle for x in a] != [x.cycle for x in c]

    def test_monotonic_nondecreasing(self):
        arrivals = poisson_arrivals(stream_queue(100, seed=2), 1500, seed=4)
        cycles = [a.cycle for a in arrivals]
        assert cycles == sorted(cycles)
        assert cycles[0] == 0

    def test_mean_gap_roughly_respected(self):
        arrivals = poisson_arrivals(stream_queue(200, seed=3), 3000, seed=5)
        span = arrivals[-1].cycle - arrivals[0].cycle
        mean = span / (len(arrivals) - 1)
        assert 1500 < mean < 6000  # loose CLT bound, deterministic seed

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(stream_queue(5, seed=0), 0)


class TestBurstyArrivals:
    def test_burst_structure(self):
        queue = stream_queue(24, seed=1)
        arrivals = bursty_arrivals(queue, burst_size=8, burst_gap=100_000,
                                   seed=2)
        cycles = [a.cycle for a in arrivals]
        assert cycles == sorted(cycles)
        # Within a burst all arrivals share one cycle (within_gap=0).
        for start in range(0, 24, 8):
            burst = cycles[start:start + 8]
            assert len(set(burst)) == 1
        # Distinct bursts are separated.
        assert cycles[0] < cycles[8] < cycles[16]

    def test_within_gap_spreads_burst(self):
        arrivals = bursty_arrivals(stream_queue(6, seed=1), burst_size=3,
                                   burst_gap=50_000, within_gap=10, seed=2)
        cycles = [a.cycle for a in arrivals]
        assert cycles[1] == cycles[0] + 10

    def test_validation(self):
        queue = stream_queue(5, seed=0)
        with pytest.raises(ValueError):
            bursty_arrivals(queue, burst_size=0, burst_gap=100)
        with pytest.raises(ValueError):
            bursty_arrivals(queue, burst_size=2, burst_gap=0)


class TestBatchArrivals:
    def test_all_at_zero(self):
        queue = stream_queue(10, seed=1)
        arrivals = batch_arrivals(queue)
        assert all(a.cycle == 0 for a in arrivals)
        assert [a.name for a in arrivals] == [n for n, _ in queue]


class TestTraceArrivals:
    def test_parse_with_comments_and_blanks(self):
        lines = [
            "# warm-up phase",
            "",
            "0 BLK",
            "1000 HS  # inline comment",
            "500 BLK",
        ]
        arrivals = trace_arrivals(lines)
        assert [(a.cycle, a.name) for a in arrivals] == [
            (0, "BLK"), (500, "BLK#1"), (1000, "HS")]
        assert arrivals[0].spec == RODINIA_SPECS["BLK"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            trace_arrivals(["0 NOPE"])

    def test_instance_names_rejected_not_renumbered(self):
        """A pasted 'LUD#1' must error, not silently parse as 'LUD'."""
        with pytest.raises(ValueError, match="unknown benchmark"):
            trace_arrivals(["0 LUD#1"])

    def test_bad_cycle_rejected(self):
        with pytest.raises(ValueError, match="bad cycle"):
            trace_arrivals(["soon BLK"])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            trace_arrivals(["0 BLK HS"])

    def test_load_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 BLK\n10 HS\n")
        arrivals = load_trace(path)
        assert [(a.cycle, a.name) for a in arrivals] == [(0, "BLK"),
                                                         (10, "HS")]


class TestSliceArrivals:
    """slice_arrivals — the deterministic split behind campaign
    by-trace-slice sharding (WorkloadSpec.slice)."""

    def _arrivals(self, n):
        return list(range(n))  # slicing is type-agnostic

    def test_concatenation_reproduces_input(self):
        arrivals = self._arrivals(13)
        rebuilt = []
        for k in range(4):
            rebuilt.extend(slice_arrivals(arrivals, k, 4))
        assert rebuilt == arrivals

    def test_balanced_sizes(self):
        arrivals = self._arrivals(11)
        sizes = [len(slice_arrivals(arrivals, k, 3)) for k in range(3)]
        # 11 = 4 + 4 + 3: first n % count slices take the extra one.
        assert sizes == [4, 4, 3]
        assert max(sizes) - min(sizes) <= 1

    def test_single_slice_is_identity(self):
        arrivals = self._arrivals(5)
        assert slice_arrivals(arrivals, 0, 1) == arrivals

    def test_every_slice_non_empty(self):
        arrivals = self._arrivals(4)
        for k in range(4):
            assert len(slice_arrivals(arrivals, k, 4)) == 1

    def test_count_exceeding_length_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            slice_arrivals(self._arrivals(3), 0, 4)

    def test_bad_index_and_count_rejected(self):
        arrivals = self._arrivals(6)
        with pytest.raises(ValueError, match="count"):
            slice_arrivals(arrivals, 0, 0)
        with pytest.raises(ValueError, match="index"):
            slice_arrivals(arrivals, 3, 3)
        with pytest.raises(ValueError, match="index"):
            slice_arrivals(arrivals, -1, 3)

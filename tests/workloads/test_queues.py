"""Tests for queue builders (Fig. 4.1's queue and the 5 distributions)."""

import pytest

from repro.workloads import (DISTRIBUTIONS, TABLE_3_2_CLASSES,
                             distribution_queue, paper_queue,
                             queue_class_counts)
from repro.workloads.queues import PAPER_QUEUE_ORDER, _apportion


class TestPaperQueue:
    def test_fourteen_entries(self):
        assert len(paper_queue()) == 14

    def test_arrival_order_matches_fig_4_2b(self):
        names = [name for name, _ in paper_queue()]
        assert names == PAPER_QUEUE_ORDER
        # FCFS pairs of Fig. 4.2(b):
        pairs = [tuple(names[i:i + 2]) for i in range(0, 14, 2)]
        assert pairs == [("BFS2", "GUPS"), ("FFT", "SPMV"), ("3DS", "BP"),
                         ("JPEG", "BLK"), ("LUD", "HS"), ("LPS", "SAD"),
                         ("NN", "RAY")]

    def test_class_composition(self):
        counts = queue_class_counts(paper_queue())
        assert counts == {"M": 2, "MC": 5, "C": 2, "A": 5}

    def test_scaled_queue(self):
        q = paper_queue(scale=0.5)
        full = dict(paper_queue())
        for name, spec in q:
            assert spec.instr_per_warp == full[name].instr_per_warp // 2


class TestDistributionQueues:
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_length(self, dist):
        assert len(distribution_queue(dist, length=20)) == 20

    def test_equal_distribution(self):
        counts = queue_class_counts(distribution_queue("equal", 20))
        assert counts == {"M": 5, "MC": 5, "C": 5, "A": 5}

    @pytest.mark.parametrize("dist", ["M", "MC", "C", "A"])
    def test_oriented_distribution(self, dist):
        counts = queue_class_counts(distribution_queue(dist, 20))
        assert counts[dist] == 11  # 55 % of 20
        for other in set("M MC C A".split()) - {dist}:
            assert counts[other] == 3  # 15 % of 20

    def test_deterministic_for_seed(self):
        a = [n for n, _ in distribution_queue("M", 20, seed=3)]
        b = [n for n, _ in distribution_queue("M", 20, seed=3)]
        assert a == b

    def test_seeded_golden_orders(self):
        """Seeded queues must be stable across sessions and processes —
        stream scenarios and figure goldens depend on it.  These orders
        were captured once; a change means `random.Random` usage moved."""
        assert [n for n, _ in distribution_queue("equal", 20, seed=123)] == [
            "3DS", "HS", "GUPS#1", "BLK#2", "BFS2#2", "BFS2#1", "SPMV",
            "RAY", "BP", "BFS2", "LUD", "FFT", "BLK", "JPEG", "NN", "SAD",
            "SPMV#1", "BLK#1", "LPS", "GUPS"]
        assert [n for n, _ in distribution_queue("M", 12, seed=7)] == [
            "FFT", "JPEG", "GUPS#1", "LUD", "BFS2", "BLK#2", "SPMV",
            "GUPS", "BLK", "BP", "BLK#1", "GUPS#2"]

    def test_specs_deterministic_for_seed(self):
        a = distribution_queue("equal", 20, seed=11)
        b = distribution_queue("equal", 20, seed=11)
        assert [s for _, s in a] == [s for _, s in b]

    def test_seed_changes_order_not_composition(self):
        a = distribution_queue("M", 20, seed=1)
        b = distribution_queue("M", 20, seed=2)
        assert [n for n, _ in a] != [n for n, _ in b]
        assert queue_class_counts(a) == queue_class_counts(b)

    def test_unique_entry_names(self):
        names = [n for n, _ in distribution_queue("A", 20)]
        assert len(set(names)) == len(names)

    def test_instances_map_to_base_benchmarks(self):
        for name, _spec in distribution_queue("C", 20):
            base = name.split("#", 1)[0]
            assert base in TABLE_3_2_CLASSES

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            distribution_queue("Z", 20)

    def test_apportionment_sums_to_length(self):
        for length in (7, 13, 20, 21):
            counts = _apportion({"M": 0.55, "MC": 0.15, "C": 0.15,
                                 "A": 0.15}, length)
            assert sum(counts.values()) == length

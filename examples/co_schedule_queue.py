#!/usr/bin/env python3
"""Full methodology demo: drain the paper's 14-application queue under
every scheduling policy and compare device throughput.

This is the Fig. 4.1 experiment as a library walkthrough: profile the
suite, measure the class interference matrix, let the ILP pick the
co-run pairs, and execute everything — then print the policy comparison
and the ILP's chosen pairs.

Usage:  python examples/co_schedule_queue.py        (~1 minute)
"""

from repro.analysis import normalize, render_bars, render_table
from repro.core import (CLASS_ORDER, FCFSPolicy, ILPPolicy, ILPSMRAPolicy,
                        ProfileBasedPolicy, SerialPolicy, make_context,
                        run_queue)
from repro.gpusim import gtx480
from repro.workloads import RODINIA_SPECS, paper_queue


def main():
    config = gtx480()
    print("Building context (solo profiles + Fig 3.4 interference "
          "matrix)...")
    ctx = make_context(config, suite=dict(RODINIA_SPECS),
                       need_interference=True, samples_per_pair=2)

    headers = ["victim \\ with"] + [str(c) for c in CLASS_ORDER]
    rows = [[str(v)] + list(r)
            for v, r in zip(CLASS_ORDER, ctx.interference.slowdown)]
    print(render_table(headers, rows,
                       title="\nMeasured class slowdown matrix (Fig 3.4)"))

    queue = paper_queue()
    policies = [SerialPolicy(), FCFSPolicy(2), ProfileBasedPolicy(2),
                ILPPolicy(2), ILPSMRAPolicy(2)]
    throughputs = {}
    outcomes = {}
    for policy in policies:
        print(f"\nRunning queue under {policy.name} ...")
        outcome = run_queue(queue, policy, ctx)
        outcomes[policy.name] = outcome
        throughputs[policy.name] = outcome.device_throughput
        for group in outcome.groups:
            print(f"  {' + '.join(group.members):24} "
                  f"{group.cycles:>8,} cycles")

    print()
    print(render_bars(normalize(throughputs, "Serial"), width=40,
                      baseline=1.0,
                      title="Device throughput, normalized to Serial "
                            "(Fig 4.1)"))


if __name__ == "__main__":
    main()

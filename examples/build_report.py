#!/usr/bin/env python3
"""Assemble benchmarks/results/*.txt into a single markdown report.

Run the benchmark harness first (``pytest benchmarks/ --benchmark-only``)
so the per-figure renderings exist, then:

    python examples/build_report.py [output.md]
"""

import pathlib
import sys

from repro.analysis.report import load_results_dir, write_report

TITLES = {
    "fig1_2_utilization": "Max utilization of Rodinia benchmarks (solo)",
    "table3_2_classification": "Benchmark classification",
    "fig3_4_interference": "Per-class co-run slowdowns",
    "fig3_5_scalability": "IPC scalability trends",
    "fig3_6_ipc_cores": "IPC at different core counts",
    "fig4_1_two_app_throughput": "Two-app queue throughput",
    "fig4_2a_ilp_pairs": "ILP pairs vs serial",
    "fig4_2b_fcfs_pairs": "FCFS pairs vs serial",
    "fig4_3_two_app_distributions": "Two-app throughput by distribution",
    "fig4_4_equal_dist_per_app": "Per-app throughput (equal distribution)",
    "fig4_9_three_app_throughput": "Three-app queue throughput",
    "appendix_a_ilp": "Appendix A worked ILP example",
}


def main() -> int:
    results = pathlib.Path(__file__).resolve().parent.parent / \
        "benchmarks" / "results"
    if not results.is_dir():
        print("No benchmarks/results directory found - run "
              "`pytest benchmarks/ --benchmark-only` first.")
        return 1
    out = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else \
        results.parent / "REPORT.md"
    report = load_results_dir(results, titles=TITLES)
    report.title = "GPU multi-application co-scheduling — measured figures"
    report.preamble = ("Generated from benchmarks/results/ by "
                       "examples/build_report.py. See EXPERIMENTS.md for "
                       "the paper-vs-measured discussion.")
    write_report(report, out)
    print(f"wrote {out} ({len(report.sections)} sections)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

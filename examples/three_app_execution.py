#!/usr/bin/env python3
"""Three concurrent applications (§4.2): drain the 12-app queue with
NC=3 groups under Serial, FCFS, and ILP selection.

Usage:  python examples/three_app_execution.py        (~1 minute)
"""

from repro.analysis import normalize, render_bars
from repro.core import (FCFSPolicy, ILPPolicy, SerialPolicy, make_context,
                        run_queue)
from repro.gpusim import gtx480
from repro.workloads import RODINIA_SPECS, paper_queue_three


def main():
    config = gtx480()
    print("Building context...")
    ctx = make_context(config, suite=dict(RODINIA_SPECS),
                       need_interference=True, samples_per_pair=2)

    queue = paper_queue_three()
    throughputs = {}
    for policy in (SerialPolicy(), FCFSPolicy(3), ILPPolicy(3)):
        outcome = run_queue(queue, policy, ctx)
        throughputs[policy.name] = outcome.device_throughput
        print(f"\n{policy.name}:")
        for group in outcome.groups:
            print(f"  {' + '.join(group.members):28} "
                  f"{group.cycles:>8,} cycles")

    print()
    print(render_bars(normalize(throughputs, "Serial"), width=40,
                      baseline=1.0,
                      title="Three-app device throughput "
                            "(normalized to Serial, Fig 4.9)"))


if __name__ == "__main__":
    main()

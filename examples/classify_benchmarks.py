#!/usr/bin/env python3
"""Reproduce Table 3.2: profile and classify the whole benchmark suite,
plus a few synthetic kernels, and print the classification table.

Usage:  python examples/classify_benchmarks.py
"""

from repro.analysis import render_table
from repro.core import ClassificationThresholds, Profiler, classify
from repro.gpusim import gtx480
from repro.workloads import RODINIA_SPECS, TABLE_3_2_CLASSES, synthetic_spec


def main():
    config = gtx480()
    profiler = Profiler(config)
    thresholds = ClassificationThresholds.for_device(config)
    print(f"Thresholds: alpha={thresholds.alpha_gbps:.1f} GB/s, "
          f"beta={thresholds.beta_gbps:.1f} GB/s, "
          f"gamma={thresholds.gamma_gbps:.0f} GB/s, "
          f"epsilon={thresholds.epsilon_ipc:.0f} IPC\n")

    rows = []
    for name, spec in RODINIA_SPECS.items():
        m = profiler.profile(name, spec)
        cls = classify(m, thresholds)
        rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps,
                     m.ipc, m.mem_compute_ratio, str(cls),
                     TABLE_3_2_CLASSES[name]))
    print(render_table(
        ["Benchmark", "MemoryBW", "L2->L1", "IPC", "R", "class", "paper"],
        rows, title="Table 3.2 (reproduced)"))

    print("\nSynthetic kernels (generator targets vs classifier):")
    rows = []
    for target in ("M", "MC", "C", "A"):
        spec = synthetic_spec(target, seed=3)
        m = profiler.profile(spec.name, spec)
        rows.append((spec.name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps,
                     m.ipc, str(classify(m, thresholds)), target))
    print(render_table(
        ["kernel", "MemoryBW", "L2->L1", "IPC", "class", "target"], rows))


if __name__ == "__main__":
    main()

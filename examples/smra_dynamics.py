#!/usr/bin/env python3
"""Watch Algorithm 1 (SMRA) reallocate SMs between two co-running apps.

Pairs LUD (can only occupy 12 SMs — the paper's flat-scalability case)
with 3DS (streams through memory and iterates kernel launches).  The
controller samples every TC cycles, scores both applications, migrates
SMs from the underutilizing one, and rolls back moves that hurt device
throughput.  The decision log is printed tick by tick.

Usage:  python examples/smra_dynamics.py
"""

from repro.core import SMRAController, SMRAParams
from repro.gpusim import Application, GPU, gtx480
from repro.workloads import RODINIA_SPECS


def main():
    config = gtx480()
    gpu = GPU(config)
    gpu.launch([Application("3DS", RODINIA_SPECS["3DS"]),
                Application("LUD", RODINIA_SPECS["LUD"])])

    params = SMRAParams(interval=2000, ipc_thr=150.0, bw_thr=0.45,
                        nr=2, r_min=4)
    controller = SMRAController(params)
    result = gpu.run(callbacks=(controller.callback(),))

    names = {0: "3DS", 1: "LUD"}
    print(f"SMRA on 3DS + LUD  (TC={params.interval}, nr={params.nr}, "
          f"Rmin={params.r_min})\n")
    print(f"{'cycle':>7}  {'window T':>9}  {'scores':20}  action")
    print("-" * 64)
    for d in controller.decisions:
        scores = ", ".join(f"{names.get(a, a)}={v}"
                           for a, v in sorted(d.scores.items()))
        if d.reverted:
            action = "rolled back previous move"
        elif d.moved_sms:
            action = (f"moved {d.moved_sms} SMs "
                      f"{names.get(d.moved_from)} -> "
                      f"{names.get(d.moved_to)}")
        else:
            action = "-"
        print(f"{d.cycle:>7}  {d.throughput:>9.1f}  {scores:20}  {action}")

    print(f"\ntotal migrations: {controller.total_migrations}, "
          f"rollbacks: {controller.total_rollbacks}")
    for app_id, stats in result.app_stats.items():
        print(f"{names[app_id]:4} finished at cycle "
              f"{stats.finish_cycle:,}")
    print(f"device throughput: {result.device_throughput:.1f} "
          f"instructions/cycle")


if __name__ == "__main__":
    main()

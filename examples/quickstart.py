#!/usr/bin/env python3
"""Quickstart: simulate two applications sharing a GPU, solo and co-run.

Runs Hotspot (compute-intensive) and GUPS (memory-intensive) alone on the
paper's GTX-480 configuration, profiles and classifies them, then co-runs
them on an evenly split device and prints per-app slowdowns and the
device throughput gain.

Usage:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.core import ClassificationThresholds, Profiler, classify
from repro.gpusim import Application, gtx480, simulate
from repro.workloads import RODINIA_SPECS


def main():
    config = gtx480()
    profiler = Profiler(config)
    thresholds = ClassificationThresholds.for_device(config)

    names = ("HS", "GUPS")
    rows = []
    solo_cycles = {}
    for name in names:
        metrics = profiler.profile(name, RODINIA_SPECS[name])
        solo_cycles[name] = metrics.solo_cycles
        rows.append((name, metrics.memory_bandwidth_gbps,
                     metrics.l2_to_l1_gbps, metrics.ipc,
                     str(classify(metrics, thresholds)),
                     metrics.solo_cycles))
    print(render_table(
        ["app", "MB (GB/s)", "L2->L1", "IPC", "class", "solo cycles"],
        rows, title="Solo profiles on the GTX-480 configuration"))

    apps = [Application(n, RODINIA_SPECS[n]) for n in names]
    result = simulate(config, apps)  # even 30/30 SM split

    print("\nConcurrent execution (even SM split):")
    total_serial = sum(solo_cycles.values())
    for app_id, stats in result.app_stats.items():
        name = result.app_names[app_id]
        slowdown = stats.finish_cycle / solo_cycles[name]
        print(f"  {name:5} finished at cycle {stats.finish_cycle:>7,} "
              f"(slowdown vs solo: {slowdown:.2f}x)")
    print(f"  pair finished in {result.cycles:,} cycles vs "
          f"{total_serial:,} serially "
          f"-> {total_serial / result.cycles:.2f}x throughput")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart for the declarative Scenario API (see docs/api.md).

Builds one scenario per run kind — a batch queue drain, an online
Poisson stream, and a two-device fleet — runs each through the single
``run_scenario`` entry point, and prints the normalized headline
metrics plus the provenance block that makes every result replayable.
Also shows the registry extension point by registering (and running) a
custom online policy without touching any core module.

Everything is scaled down (small kernels, few apps) so the whole tour
takes seconds.

Usage:  python examples/scenario_quickstart.py
"""

from repro.analysis import render_table
from repro.api import (REGISTRY, DeviceSpec, PlacementSpec, PolicySpec,
                       Scenario, WorkloadSpec, run_scenario)
from repro.runtime import OnlineFCFS


def headline(result):
    m = result.metrics
    if result.kind == "queue":
        score = f"throughput {m['device_throughput']:.1f} instr/cycle"
    else:
        score = f"ANTT {m['antt']:.2f}, STP {m['stp']:.2f}"
    return [result.kind, m["policy"], m["makespan"], score,
            result.provenance["spec_hash"][:10]]


def main():
    workload = WorkloadSpec(source="stream", apps=6,
                            synthetic_fraction=0.5, scale=0.1, seed=42,
                            arrival="poisson", mean_gap=2000.0)

    scenarios = [
        # 1) A batch queue drain (the paper's evaluation mode).
        Scenario(kind="queue",
                 workload=WorkloadSpec(source="distribution",
                                       distribution="equal", length=6,
                                       scale=0.1, seed=42),
                 policy=PolicySpec(name="fcfs", nc=2),
                 devices=DeviceSpec(config="small-test")),
        # 2) The same style of mix as an online Poisson stream.
        Scenario(kind="stream", workload=workload,
                 policy=PolicySpec(name="fcfs", nc=2),
                 devices=DeviceSpec(config="small-test")),
        # 3) A two-device fleet draining one shared stream.
        Scenario(kind="fleet", workload=workload,
                 policy=PolicySpec(name="fcfs", nc=2),
                 placement=PlacementSpec(name="least-loaded"),
                 devices=DeviceSpec(count=2, config="small-test")),
        # 4) A heterogeneous big/little fleet: per-device configs, with
        #    profiles/denominators measured per configuration and the
        #    capability-scaled placement absorbing more on the big one.
        Scenario(kind="fleet", workload=workload,
                 policy=PolicySpec(name="fcfs", nc=2),
                 placement=PlacementSpec(name="least-loaded"),
                 devices=DeviceSpec(count=2,
                                    per_device=["small-test",
                                                "small-test-half"])),
    ]

    rows = [headline(run_scenario(s)) for s in scenarios]

    # 5) Extend the system through the registry: a custom policy is a
    #    registration away from being usable in any scenario JSON.
    @REGISTRY.register("online-policies", "fcfs-solo")
    def _fcfs_solo(nc=2):
        return OnlineFCFS(1)  # serialize everything, FCFS order

    custom = Scenario(kind="stream", workload=workload,
                      policy=PolicySpec(name="fcfs-solo"),
                      devices=DeviceSpec(config="small-test"))
    rows.append(headline(run_scenario(custom)))

    print(render_table(
        ["kind", "policy", "makespan", "headline", "spec hash"], rows,
        title="One entry point, three engines (+ a registered policy)"))

    # Replayability: the scenario JSON alone reproduces these bytes.
    result = run_scenario(scenarios[1])
    again = run_scenario(Scenario.from_json(scenarios[1].to_json()))
    assert result.to_json() == again.to_json()
    print("\nre-run from serialized scenario: byte-identical results")


if __name__ == "__main__":
    main()

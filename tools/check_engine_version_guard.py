#!/usr/bin/env python
"""CI guard: simulation goldens must not change without an
ENGINE_VERSION bump.

The golden determinism test (tests/gpusim/test_golden_determinism.py)
pins every simulation counter to values captured from the seed engine.
A PR that edits those goldens is intentionally changing simulation
results, and the contract (see repro/gpusim/__init__.py) is that such a
PR must also bump ``ENGINE_VERSION`` so stale on-disk profile caches are
invalidated.  This script compares the working tree against a base git
ref and fails loudly when the goldens changed but the version did not.

Usage::

    python tools/check_engine_version_guard.py [BASE_REF]

``BASE_REF`` defaults to ``HEAD~1`` (CI passes the PR base commit).
Exit status: 0 = consistent, 1 = goldens changed without a bump,
2 = could not compare (e.g. shallow history without the base ref).
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GOLDEN_FILE = "tests/gpusim/test_golden_determinism.py"
ENGINE_FILE = "src/repro/gpusim/__init__.py"
VERSION_RE = re.compile(r"^ENGINE_VERSION\s*=\s*(\d+)", re.MULTILINE)


def _git_show(ref: str, path: str) -> str:
    return subprocess.run(
        ["git", "-C", str(REPO_ROOT), "show", f"{ref}:{path}"],
        check=True, capture_output=True, text=True).stdout


def _engine_version(text: str) -> int:
    match = VERSION_RE.search(text)
    if match is None:
        raise ValueError(f"no ENGINE_VERSION assignment found")
    return int(match.group(1))


def main(argv) -> int:
    base = argv[1] if len(argv) > 1 else "HEAD~1"
    try:
        base_golden = _git_show(base, GOLDEN_FILE)
        base_engine = _git_show(base, ENGINE_FILE)
    except subprocess.CalledProcessError as err:
        print(f"engine-version guard: cannot read {base!r} "
              f"({err.stderr.strip()}); skipping", file=sys.stderr)
        return 2

    head_golden = (REPO_ROOT / GOLDEN_FILE).read_text()
    head_engine = (REPO_ROOT / ENGINE_FILE).read_text()

    goldens_changed = base_golden != head_golden
    old_version = _engine_version(base_engine)
    new_version = _engine_version(head_engine)

    if goldens_changed and new_version == old_version:
        print(
            f"ERROR: {GOLDEN_FILE} changed relative to {base} but "
            f"ENGINE_VERSION is still {new_version}.\n"
            f"Changing simulation goldens means simulation *results* "
            f"changed; bump ENGINE_VERSION in {ENGINE_FILE} so stale "
            f"on-disk profile caches are invalidated (see its "
            f"docstring), or revert the golden edit if the change was "
            f"unintentional.", file=sys.stderr)
        return 1

    if goldens_changed:
        print(f"engine-version guard: goldens changed with a version "
              f"bump ({old_version} -> {new_version}) — OK")
    else:
        print("engine-version guard: goldens unchanged — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

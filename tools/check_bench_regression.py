#!/usr/bin/env python
"""CI gate: the perf smokes must not regress events/s beyond tolerance.

``benchmarks/perf/run_bench.py`` rewrites ``BENCH_gpusim.json`` at the
repo root with per-workload ``events_per_sec`` figures, and
``run_fleet_bench.py`` does the same for ``BENCH_fleet.json`` (per
placement drain, plus the fault drain).  This script compares one
fresh measurement against the **committed** baseline (the same file as
stored in git) and fails when throughput regressed beyond the
tolerance — the machine-enforced version of PR 1's "hot path stays
fast" contract, mirroring ``check_engine_version_guard.py``.

The comparison is the geometric-mean ratio of every ``events_per_sec``
figure present (at the same position) in both files: CI runners differ
from the machine that committed the baseline, so a single entry's
jitter should not fail the build, but a uniform slide (a regression in
the event engine or the fleet loop itself) moves the whole mean.  The
default tolerance of 25% absorbs runner-to-runner variance; pass
``--tolerance`` to tighten it on calibrated hardware (the fleet gate
runs at 0.25 too — its floor of 0.75x is the issue-mandated bound).

Usage::

    python tools/check_bench_regression.py [--file NAME]
        [--current PATH] [--baseline REF_OR_PATH]
        [--tolerance FRACTION]

``--file`` names the bench document (default ``BENCH_gpusim.json``;
pass ``BENCH_fleet.json`` for the fleet gate) — it is both the default
``--current`` path and the blob read from git.  ``--baseline`` is
either a file path or a git ref (default ``HEAD``, read as ``git show
REF:<file>``).  ``--require-entry PATH`` (repeatable) asserts that the
*fresh* measurement contains an ``events_per_sec`` figure at the named
dotted path — the guard against a bench scenario silently vanishing
from the gate (a dropped entry is otherwise just "not shared" and the
geomean quietly narrows).  Exit status: 0 = within tolerance, 1 =
regression or missing required entry, 2 = could not compare (missing
baseline or current file, no shared entries) — CI tolerates 2,
mirroring the engine-version guard.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_BENCH_FILE = "BENCH_gpusim.json"


def _load_current(path: pathlib.Path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as err:
        print(f"bench-regression gate: cannot read current {path} "
              f"({err}); skipping", file=sys.stderr)
        return None


def _load_baseline(ref_or_path: str,
                   bench_file: str = DEFAULT_BENCH_FILE):
    path = pathlib.Path(ref_or_path)
    if path.is_file():
        return _load_current(path)
    try:
        shown = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "show",
             f"{ref_or_path}:{bench_file}"],
            check=True, capture_output=True, text=True).stdout
        return json.loads(shown)
    except (subprocess.CalledProcessError, OSError, ValueError) as err:
        detail = getattr(err, "stderr", "") or str(err)
        print(f"bench-regression gate: cannot read baseline "
              f"{ref_or_path!r} ({detail.strip()}); skipping",
              file=sys.stderr)
        return None


def _events_per_sec(bench: dict) -> dict:
    """Every positive ``events_per_sec`` in the document, keyed by path.

    Walks the whole bench JSON rather than assuming one layout, so the
    gpusim layout (``workloads.<name>``) and the fleet layout
    (``scenarios.placement_comparison.<placement>`` /
    ``scenarios.fault_drain``) share one gate.
    """
    found = {}

    def walk(node, path):
        if not isinstance(node, dict):
            return
        value = node.get("events_per_sec")
        if isinstance(value, (int, float)) and value > 0:
            found[path or "<root>"] = value
        for key, child in sorted(node.items()):
            walk(child, f"{path}.{key}" if path else key)

    walk(bench, "")
    return found


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when a bench file's events/s regressed "
                    "vs the committed baseline")
    parser.add_argument("--file", default=DEFAULT_BENCH_FILE,
                        help="repo-root bench file name (default "
                             "BENCH_gpusim.json; use BENCH_fleet.json "
                             "for the fleet gate)")
    parser.add_argument("--current", default=None,
                        help="freshly measured bench file (default: "
                             "repo-root --file)")
    parser.add_argument("--baseline", default="HEAD",
                        help="baseline file path or git ref "
                             "(default HEAD)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="maximum allowed fractional regression of "
                             "the geomean events/s (default 0.25)")
    parser.add_argument("--require-entry", action="append", default=[],
                        metavar="PATH",
                        help="dotted entry path that must carry an "
                             "events_per_sec figure in the fresh "
                             "measurement (repeatable); a missing one "
                             "fails the gate instead of silently "
                             "narrowing the geomean")
    args = parser.parse_args(argv[1:])
    if not 0 < args.tolerance < 1:
        parser.error(f"--tolerance must be in (0, 1), got "
                     f"{args.tolerance}")
    current_path = args.current or str(REPO_ROOT / args.file)

    current = _load_current(pathlib.Path(current_path))
    if current is None:
        return 2
    baseline = _load_baseline(args.baseline, args.file)
    if baseline is None:
        return 2

    new = _events_per_sec(current)
    missing = [name for name in args.require_entry if name not in new]
    if missing:
        print(f"ERROR: required bench entr(ies) missing from "
              f"{current_path}: {', '.join(missing)}.\n"
              f"Present entries: {', '.join(sorted(new)) or '<none>'}",
              file=sys.stderr)
        return 1
    old = _events_per_sec(baseline)
    shared = sorted(set(new) & set(old))
    if not shared:
        print("bench-regression gate: no shared entries between "
              "current and baseline; skipping", file=sys.stderr)
        return 2

    log_sum = 0.0
    width = max(28, max(len(name) for name in shared))
    print(f"{'entry':{width}} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}")
    for name in shared:
        ratio = new[name] / old[name]
        log_sum += math.log(ratio)
        print(f"{name:{width}} {old[name]:>12,.0f} {new[name]:>12,.0f} "
              f"{ratio:>6.2f}x")
    geomean = math.exp(log_sum / len(shared))
    floor = 1.0 - args.tolerance
    print(f"geomean events/s ratio over {len(shared)} entr(ies): "
          f"{geomean:.3f}x (floor {floor:.2f}x)")

    if geomean < floor:
        print(
            f"ERROR: events/s regressed to {geomean:.2f}x of the "
            f"committed baseline (allowed floor {floor:.2f}x).\n"
            f"If the slowdown is intentional, re-run the matching "
            f"benchmarks/perf script and commit the refreshed "
            f"{args.file} alongside the change that explains it.",
            file=sys.stderr)
        return 1
    print("bench-regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python
"""Trace lint: structural invariants every committed trace must hold.

``repro run --trace`` (and ``run-stream`` / ``run-fleet``
``--trace-out``) record the virtual-clock event stream described in
``docs/observability.md``.  This script re-reads a trace file (JSONL or
Chrome ``trace_event`` — both exporters echo enough to validate) and
checks the invariants the engines guarantee by construction:

1. **Known, well-formed events** — every event kind is in the closed
   taxonomy and every cycle stamp is a non-negative integer.
2. **Monotonic per-device timelines** — for *timeline* kinds (launch,
   group_finish, group_failed, fault, recover) the cycle stamps of each
   device track never decrease.  Speculation-activity kinds (predict,
   spec_hit, spec_miss) are exempt: they record when work was
   *performed*, which under run-ahead legitimately interleaves with
   later-committed timeline events.
3. **Balanced run-ahead windows** — ``window_open`` / ``window_commit``
   pairs nest nowhere, ``window_rollback`` appears only between an open
   and its commit, and no window is left open at end of trace.
4. **Launch/retire pairing** — per device track, a ``launch`` while a
   group is still in flight is an error; ``group_finish`` /
   ``group_failed`` / ``fault`` close the in-flight group (with
   matching members for finish/failed); nothing is left in flight at
   end of trace.

Usage::

    python tools/validate_trace.py TRACE [TRACE ...] [--quiet]

Exit status: 0 = every trace valid, 1 = violations found or a trace
could not be read.  The CI ``trace-smoke`` job runs this over a fresh
``fleet_faults`` trace in both formats; the unit tests drive
:func:`validate_events` directly.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.obs import EVENT_KINDS, TraceEvent, load_events  # noqa: E402

#: Kinds whose cycle stamps form the committed per-device timeline and
#: must therefore never decrease within one device track.
TIMELINE_KINDS = ("launch", "group_finish", "group_failed", "fault",
                  "recover")

#: Kinds that close an in-flight launch on their device track.
_CLOSERS = ("group_finish", "group_failed", "fault")


def _track(event: TraceEvent) -> str:
    """The per-device track key (`fleet` for device-less events)."""
    return "fleet" if event.device is None else f"device {event.device}"


def validate_events(events: Sequence[TraceEvent]) -> List[str]:
    """Every invariant violation in `events`, as human-readable lines."""
    errors: List[str] = []
    known = frozenset(EVENT_KINDS)
    timeline = frozenset(TIMELINE_KINDS)
    last_cycle = {}          # track -> last timeline cycle seen
    inflight = {}            # track -> (index, members) of open launch
    window_open_at: Optional[int] = None

    for index, ev in enumerate(events):
        where = f"event {index} ({ev.kind} @ {ev.cycle})"
        if ev.kind not in known:
            errors.append(f"{where}: unknown event kind {ev.kind!r}")
            continue
        if not isinstance(ev.cycle, int) or ev.cycle < 0:
            errors.append(f"{where}: cycle must be a non-negative "
                          f"integer, got {ev.cycle!r}")
            continue
        track = _track(ev)

        if ev.kind in timeline:
            prev = last_cycle.get(track)
            if prev is not None and ev.cycle < prev:
                errors.append(
                    f"{where}: {track} timeline went backwards "
                    f"({prev} -> {ev.cycle})")
            last_cycle[track] = max(prev or 0, ev.cycle)

        if ev.kind == "launch":
            if track in inflight:
                open_idx, members = inflight[track]
                errors.append(
                    f"{where}: {track} launched while the group from "
                    f"event {open_idx} ({', '.join(members)}) is still "
                    f"in flight")
            inflight[track] = (index, list(ev.data.get("members", [])))
        elif ev.kind in _CLOSERS:
            open_entry = inflight.pop(track, None)
            if ev.kind == "fault":
                # A fault closes any in-flight group (cancelled), but a
                # fault on an idle device is equally legal.
                pass
            elif open_entry is None:
                errors.append(f"{where}: {track} retired a group with "
                              f"no launch in flight")
            else:
                members = list(ev.data.get("members", []))
                if members != open_entry[1]:
                    errors.append(
                        f"{where}: {track} retired members {members} "
                        f"but launched {open_entry[1]} "
                        f"(event {open_entry[0]})")

        if ev.kind == "window_open":
            if window_open_at is not None:
                errors.append(f"{where}: window opened while the window "
                              f"from event {window_open_at} is still "
                              f"open (windows never nest)")
            window_open_at = index
        elif ev.kind == "window_commit":
            if window_open_at is None:
                errors.append(f"{where}: window commit without a "
                              f"matching window_open")
            window_open_at = None
        elif ev.kind == "window_rollback":
            if window_open_at is None:
                errors.append(f"{where}: window rollback outside an "
                              f"open window")

    if window_open_at is not None:
        errors.append(f"end of trace: window from event "
                      f"{window_open_at} was never committed")
    for track, (open_idx, members) in sorted(inflight.items()):
        errors.append(f"end of trace: {track} still has the group from "
                      f"event {open_idx} ({', '.join(members)}) in "
                      f"flight")
    return errors


def validate_file(path: str) -> List[str]:
    """Load and validate one trace file; unreadable = one error."""
    try:
        events = load_events(path)
    except (OSError, ValueError, KeyError) as exc:
        return [f"could not read trace: {exc}"]
    if not events:
        return ["trace contains no events"]
    return validate_events(events)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate repro trace files (JSONL or Chrome "
                    "trace_event)")
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="trace file(s) to validate")
    parser.add_argument("--quiet", action="store_true",
                        help="print nothing on success")
    args = parser.parse_args(argv)

    failed = False
    for path in args.traces:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for line in errors:
                print(f"  {line}")
        elif not args.quiet:
            count = len(load_events(path))
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
